#include "algebra/expr.h"

#include "core/hash.h"

#include <algorithm>

namespace tqp {

namespace {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

}  // namespace

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

ExprPtr Expr::Attr(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAttr;
  e->attr_name_ = std::move(name);
  e->ComputeHash();
  return e;
}

ExprPtr Expr::Const(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kConst;
  e->constant_ = std::move(v);
  e->ComputeHash();
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCompare;
  e->compare_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  e->ComputeHash();
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAnd;
  e->children_ = {std::move(lhs), std::move(rhs)};
  e->ComputeHash();
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kOr;
  e->children_ = {std::move(lhs), std::move(rhs)};
  e->ComputeHash();
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kNot;
  e->children_ = {std::move(operand)};
  e->ComputeHash();
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kArith;
  e->arith_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  e->ComputeHash();
  return e;
}

ExprPtr Expr::Overlaps(ExprPtr a, ExprPtr b, ExprPtr c, ExprPtr d) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kOverlaps;
  e->children_ = {std::move(a), std::move(b), std::move(c), std::move(d)};
  e->ComputeHash();
  return e;
}

Result<Value> Expr::Eval(const Tuple& tuple, const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kAttr: {
      int idx = schema.IndexOf(attr_name_);
      if (idx < 0) {
        return Status::InvalidArgument("unknown attribute '" + attr_name_ +
                                       "' in " + schema.ToString());
      }
      return tuple.at(static_cast<size_t>(idx));
    }
    case ExprKind::kConst:
      return constant_;
    case ExprKind::kCompare: {
      TQP_ASSIGN_OR_RETURN(lhs, children_[0]->Eval(tuple, schema));
      TQP_ASSIGN_OR_RETURN(rhs, children_[1]->Eval(tuple, schema));
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      int c = lhs.Compare(rhs);
      bool v = false;
      switch (compare_op_) {
        case CompareOp::kEq:
          v = c == 0;
          break;
        case CompareOp::kNe:
          v = c != 0;
          break;
        case CompareOp::kLt:
          v = c < 0;
          break;
        case CompareOp::kLe:
          v = c <= 0;
          break;
        case CompareOp::kGt:
          v = c > 0;
          break;
        case CompareOp::kGe:
          v = c >= 0;
          break;
      }
      return Value::Int(v ? 1 : 0);
    }
    case ExprKind::kAnd: {
      TQP_ASSIGN_OR_RETURN(lhs, children_[0]->Eval(tuple, schema));
      if (!lhs.is_null() && lhs.NumericValue() == 0) return Value::Int(0);
      TQP_ASSIGN_OR_RETURN(rhs, children_[1]->Eval(tuple, schema));
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value::Int(rhs.NumericValue() != 0 ? 1 : 0);
    }
    case ExprKind::kOr: {
      TQP_ASSIGN_OR_RETURN(lhs, children_[0]->Eval(tuple, schema));
      if (!lhs.is_null() && lhs.NumericValue() != 0) return Value::Int(1);
      TQP_ASSIGN_OR_RETURN(rhs, children_[1]->Eval(tuple, schema));
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value::Int(rhs.NumericValue() != 0 ? 1 : 0);
    }
    case ExprKind::kNot: {
      TQP_ASSIGN_OR_RETURN(v, children_[0]->Eval(tuple, schema));
      if (v.is_null()) return Value::Null();
      return Value::Int(v.NumericValue() == 0 ? 1 : 0);
    }
    case ExprKind::kArith: {
      TQP_ASSIGN_OR_RETURN(lhs, children_[0]->Eval(tuple, schema));
      TQP_ASSIGN_OR_RETURN(rhs, children_[1]->Eval(tuple, schema));
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      if (!lhs.IsNumeric() || !rhs.IsNumeric()) {
        return Status::InvalidArgument("arithmetic on non-numeric values");
      }
      // Result typing mirrors DeriveExprType: division is double; otherwise
      // double dominates, then time (duration/shift arithmetic), then int.
      bool integral = lhs.type() != ValueType::kDouble &&
                      rhs.type() != ValueType::kDouble;
      bool timey = lhs.type() == ValueType::kTime ||
                   rhs.type() == ValueType::kTime;
      double a = lhs.NumericValue();
      double b = rhs.NumericValue();
      double r = 0;
      switch (arith_op_) {
        case ArithOp::kAdd:
          r = a + b;
          break;
        case ArithOp::kSub:
          r = a - b;
          break;
        case ArithOp::kMul:
          r = a * b;
          break;
        case ArithOp::kDiv:
          if (b == 0) return Value::Null();
          r = a / b;
          integral = false;
          break;
      }
      if (integral && timey) return Value::Time(static_cast<TimePoint>(r));
      if (integral) return Value::Int(static_cast<int64_t>(r));
      return Value::Double(r);
    }
    case ExprKind::kOverlaps: {
      TQP_ASSIGN_OR_RETURN(a, children_[0]->Eval(tuple, schema));
      TQP_ASSIGN_OR_RETURN(b, children_[1]->Eval(tuple, schema));
      TQP_ASSIGN_OR_RETURN(c, children_[2]->Eval(tuple, schema));
      TQP_ASSIGN_OR_RETURN(d, children_[3]->Eval(tuple, schema));
      if (a.is_null() || b.is_null() || c.is_null() || d.is_null()) {
        return Value::Null();
      }
      bool v = a.NumericValue() < d.NumericValue() &&
               c.NumericValue() < b.NumericValue();
      return Value::Int(v ? 1 : 0);
    }
  }
  return Status::Error("unreachable expression kind");
}

bool Expr::EvalPredicate(const Tuple& tuple, const Schema& schema) const {
  Result<Value> r = Eval(tuple, schema);
  if (!r.ok() || r->is_null()) return false;
  return r->NumericValue() != 0;
}

std::set<std::string> Expr::ReferencedAttrs() const {
  std::set<std::string> out;
  if (kind_ == ExprKind::kAttr) out.insert(attr_name_);
  for (const ExprPtr& c : children_) {
    std::set<std::string> sub = c->ReferencedAttrs();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

bool Expr::IsTimeFree() const {
  std::set<std::string> attrs = ReferencedAttrs();
  return attrs.count(kT1) == 0 && attrs.count(kT2) == 0;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kAttr:
      return attr_name_;
    case ExprKind::kConst:
      return constant_.type() == ValueType::kString
                 ? "'" + constant_.ToString() + "'"
                 : constant_.ToString();
    case ExprKind::kCompare:
      return "(" + children_[0]->ToString() + " " +
             CompareOpName(compare_op_) + " " + children_[1]->ToString() + ")";
    case ExprKind::kAnd:
      return "(" + children_[0]->ToString() + " AND " +
             children_[1]->ToString() + ")";
    case ExprKind::kOr:
      return "(" + children_[0]->ToString() + " OR " +
             children_[1]->ToString() + ")";
    case ExprKind::kNot:
      return "NOT " + children_[0]->ToString();
    case ExprKind::kArith:
      return "(" + children_[0]->ToString() + " " + ArithOpName(arith_op_) +
             " " + children_[1]->ToString() + ")";
    case ExprKind::kOverlaps:
      return "OVERLAPS(" + children_[0]->ToString() + "," +
             children_[1]->ToString() + "," + children_[2]->ToString() + "," +
             children_[3]->ToString() + ")";
  }
  return "?";
}

void Expr::ComputeHash() {
  uint64_t h = HashMix64(static_cast<uint64_t>(kind_) + 1);
  switch (kind_) {
    case ExprKind::kAttr:
      h = HashCombine(h, HashString(attr_name_));
      break;
    case ExprKind::kConst:
      h = HashCombine(h, static_cast<uint64_t>(constant_.Hash()));
      break;
    case ExprKind::kCompare:
      h = HashCombine(h, static_cast<uint64_t>(compare_op_));
      break;
    case ExprKind::kArith:
      h = HashCombine(h, static_cast<uint64_t>(arith_op_));
      break;
    default:
      break;
  }
  for (const ExprPtr& c : children_) h = HashCombine(h, c->hash());
  hash_ = h;
}

bool Expr::Equals(const ExprPtr& a, const ExprPtr& b) {
  if (a.get() == b.get()) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->hash_ != b->hash_ || a->kind_ != b->kind_) return false;
  switch (a->kind_) {
    case ExprKind::kAttr:
      if (a->attr_name_ != b->attr_name_) return false;
      break;
    case ExprKind::kConst:
      if (a->constant_ != b->constant_) return false;
      break;
    case ExprKind::kCompare:
      if (a->compare_op_ != b->compare_op_) return false;
      break;
    case ExprKind::kArith:
      if (a->arith_op_ != b->arith_op_) return false;
      break;
    default:
      break;
  }
  if (a->children_.size() != b->children_.size()) return false;
  for (size_t i = 0; i < a->children_.size(); ++i) {
    if (!Equals(a->children_[i], b->children_[i])) return false;
  }
  return true;
}

ExprPtr Expr::RenameAttrs(
    const std::vector<std::pair<std::string, std::string>>& mapping) const {
  if (kind_ == ExprKind::kAttr) {
    for (const auto& [from, to] : mapping) {
      if (attr_name_ == from) return Attr(to);
    }
    return Attr(attr_name_);
  }
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = kind_;
  e->attr_name_ = attr_name_;
  e->constant_ = constant_;
  e->compare_op_ = compare_op_;
  e->arith_op_ = arith_op_;
  for (const ExprPtr& c : children_) {
    e->children_.push_back(c->RenameAttrs(mapping));
  }
  e->ComputeHash();
  return e;
}

}  // namespace tqp
