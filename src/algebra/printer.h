// Plan tree rendering, including the Figure 6 property-bracket style.
#ifndef TQP_ALGEBRA_PRINTER_H_
#define TQP_ALGEBRA_PRINTER_H_

#include <string>

#include "algebra/derivation.h"
#include "algebra/plan.h"
#include "core/profile.h"

namespace tqp {

/// Options for plan rendering.
struct PrintOptions {
  /// Append [OrderRequired DuplicatesRelevant PeriodPreserving] brackets
  /// (requires annotations).
  bool show_properties = false;
  /// Append the execution site of each operator.
  bool show_site = false;
  /// Append the derived output order of each operator.
  bool show_order = false;
  /// Append the estimated output cardinality.
  bool show_cardinality = false;
};

/// Renders a plan as an indented tree, one operator per line.
std::string PrintPlan(const PlanPtr& plan);

/// Renders an annotated plan with the requested decorations, e.g.
///   differenceT [T T T] @STRATUM
///     coalT [- T -] @STRATUM
///       ...
std::string PrintPlan(const AnnotatedPlan& plan, const PrintOptions& opts);

/// Options for EXPLAIN ANALYZE profile rendering.
struct ProfilePrintOptions {
  /// Append wall/self times per node. Off yields a byte-stable rendering of
  /// the same run-to-run structure (rows, batches, cache/pushdown flags).
  bool show_times = true;
};

/// Renders an execution profile as an indented tree in the same shape as
/// PrintPlan, one operator per line, e.g.
///   sort(Name) | rows=9 | 1.234ms (self 0.534ms)
///     rdupT | rows=9 in=12 | 0.700ms (self 0.700ms)
///       ...
/// with `| cache-hit`, `| pushed`, and `| batches=N` decorations where they
/// apply.
std::string PrintProfile(const ProfileNode& root,
                         const ProfilePrintOptions& opts = {});

}  // namespace tqp

#endif  // TQP_ALGEBRA_PRINTER_H_
