// Plan tree rendering, including the Figure 6 property-bracket style.
#ifndef TQP_ALGEBRA_PRINTER_H_
#define TQP_ALGEBRA_PRINTER_H_

#include <string>

#include "algebra/derivation.h"
#include "algebra/plan.h"

namespace tqp {

/// Options for plan rendering.
struct PrintOptions {
  /// Append [OrderRequired DuplicatesRelevant PeriodPreserving] brackets
  /// (requires annotations).
  bool show_properties = false;
  /// Append the execution site of each operator.
  bool show_site = false;
  /// Append the derived output order of each operator.
  bool show_order = false;
  /// Append the estimated output cardinality.
  bool show_cardinality = false;
};

/// Renders a plan as an indented tree, one operator per line.
std::string PrintPlan(const PlanPtr& plan);

/// Renders an annotated plan with the requested decorations, e.g.
///   differenceT [T T T] @STRATUM
///     coalT [- T -] @STRATUM
///       ...
std::string PrintPlan(const AnnotatedPlan& plan, const PrintOptions& opts);

}  // namespace tqp

#endif  // TQP_ALGEBRA_PRINTER_H_
