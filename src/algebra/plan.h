// Logical query plans: immutable operator trees over the extended algebra.
//
// The node kinds cover every operation of Table 1 plus the transfer
// operations TS/TD of the layered architecture (Section 4.5). Nodes are
// immutable and shared between plans; a rewrite rebuilds only the spine from
// the rewritten location to the root. All derived information (schemas,
// orders, guarantees, properties, cardinalities) lives outside the nodes in
// PlanAnnotations (see derivation.h), so shared subtrees can carry different
// annotations in different plans.
#ifndef TQP_ALGEBRA_PLAN_H_
#define TQP_ALGEBRA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "core/catalog.h"

namespace tqp {

/// The operations of the extended algebra (Table 1) plus transfers.
enum class OpKind {
  kScan,         // named base relation
  kSelect,       // σ_P
  kProject,      // π_{f1..fn}
  kUnionAll,     // ⊎ (concatenation)
  kProduct,      // ×
  kDifference,   // \  (multiset difference)
  kAggregate,    // ℵ_{G;F}
  kRdup,         // rdup
  kProductT,     // ×^T
  kDifferenceT,  // \^T
  kAggregateT,   // ℵ^T
  kRdupT,        // rdup^T
  kUnion,        // ∪ (max-multiplicity union)
  kUnionT,       // ∪^T
  kSort,         // sort_A
  kCoalesce,     // coal^T
  kTransferS,    // T_S : DBMS → stratum
  kTransferD,    // T_D : stratum → DBMS
};

/// Number of OpKind values, for kind-indexed dispatch tables.
inline constexpr size_t kOpKindCount =
    static_cast<size_t>(OpKind::kTransferD) + 1;

const char* OpKindName(OpKind k);

/// True for ×T, \T, ℵT, rdupT, ∪T, coalT (operations with built-in temporal
/// semantics, snapshot-reducible to their conventional counterparts).
bool IsTemporalOp(OpKind k);

/// True for rdupT, coalT, \T, ∪T — the order-sensitive operations of
/// Section 6 (multiset-equivalent inputs may yield non-multiset-equivalent
/// outputs).
bool IsOrderSensitiveOp(OpKind k);

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// A location inside a plan: the child indices followed from the root.
/// Rewrites happen "at a path": only the spine from the path's end back to
/// the root is rebuilt (path copying); everything else is shared.
using PlanPath = std::vector<uint32_t>;

/// One immutable operator node.
class PlanNode {
 public:
  OpKind kind() const { return kind_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  const PlanPtr& child(size_t i) const { return children_[i]; }
  size_t arity() const { return children_.size(); }

  /// Structural 64-bit fingerprint, computed once at construction from the
  /// operator kind, its payload, and the children's fingerprints. Two nodes
  /// with different fingerprints are guaranteed distinct; equal fingerprints
  /// are confirmed structurally where identity matters (PlanInterner).
  uint64_t fingerprint() const { return fingerprint_; }

  /// Hash of the operator kind and payload only (no children). Lets the
  /// interner predict the fingerprint of "this node with different children"
  /// without constructing it.
  uint64_t payload_hash() const { return payload_hash_; }

  /// The fingerprint a node with this kind/payload hash and these children
  /// would have. Agrees with fingerprint() by construction.
  static uint64_t FingerprintOf(OpKind kind, uint64_t payload_hash,
                                const std::vector<PlanPtr>& children);

  /// The (kind, payload)-dependent prefix of a fingerprint; callers fold the
  /// children's fingerprints onto it in order with HashCombine. The single
  /// source of truth for the mixing recipe (FingerprintOf, FingerprintAtPath
  /// and the interner all build on it).
  static uint64_t FingerprintPrefix(OpKind kind, uint64_t payload_hash);

  /// Payload-only equality (kind, rel_name, predicate, projections, ...);
  /// ignores children.
  static bool SamePayload(const PlanNode& a, const PlanNode& b);

  /// Number of operator nodes in the subtree rooted here (cached, O(1)).
  /// Counts occurrences, so a hash-consed DAG reports its unfolded size.
  size_t subtree_size() const { return subtree_size_; }

  /// Shallow structural equality: same kind and payload, children compared
  /// by pointer. Sufficient for full structural equality when both nodes'
  /// children are already interned.
  static bool SameShallow(const PlanNode& a, const PlanNode& b);

  /// Deep structural equality (pointer short-circuit, fingerprint filter,
  /// then recursion).
  static bool Equal(const PlanPtr& a, const PlanPtr& b);

  const std::string& rel_name() const { return rel_name_; }
  const ExprPtr& predicate() const { return predicate_; }
  const std::vector<ProjItem>& projections() const { return projections_; }
  const std::vector<std::string>& group_by() const { return group_by_; }
  const std::vector<AggSpec>& aggregates() const { return aggregates_; }
  const SortSpec& sort_spec() const { return sort_spec_; }

  /// Single-line description of this operator (kind + payload).
  std::string Describe() const;

  // ---- Builders ----
  static PlanPtr Scan(std::string rel_name);
  static PlanPtr Select(PlanPtr input, ExprPtr predicate);
  static PlanPtr Project(PlanPtr input, std::vector<ProjItem> items);
  static PlanPtr UnionAll(PlanPtr left, PlanPtr right);
  static PlanPtr Product(PlanPtr left, PlanPtr right);
  static PlanPtr Difference(PlanPtr left, PlanPtr right);
  static PlanPtr Aggregate(PlanPtr input, std::vector<std::string> group_by,
                           std::vector<AggSpec> aggs);
  static PlanPtr Rdup(PlanPtr input);
  static PlanPtr ProductT(PlanPtr left, PlanPtr right);
  static PlanPtr DifferenceT(PlanPtr left, PlanPtr right);
  static PlanPtr AggregateT(PlanPtr input, std::vector<std::string> group_by,
                            std::vector<AggSpec> aggs);
  static PlanPtr RdupT(PlanPtr input);
  static PlanPtr Union(PlanPtr left, PlanPtr right);
  static PlanPtr UnionT(PlanPtr left, PlanPtr right);
  static PlanPtr Sort(PlanPtr input, SortSpec spec);
  static PlanPtr Coalesce(PlanPtr input);
  static PlanPtr TransferS(PlanPtr input);  // DBMS → stratum
  static PlanPtr TransferD(PlanPtr input);  // stratum → DBMS

  /// Rebuilds this node with new children (payload preserved).
  static PlanPtr WithChildren(const PlanPtr& node,
                              std::vector<PlanPtr> children);

 protected:
  PlanNode() = default;

  /// Seals the node: derives payload_hash_, fingerprint_ and subtree_size_
  /// from the payload and children. Must be the last step of every
  /// construction path.
  void Finalize();

  OpKind kind_ = OpKind::kScan;
  std::vector<PlanPtr> children_;
  std::string rel_name_;
  ExprPtr predicate_;
  std::vector<ProjItem> projections_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggregates_;
  SortSpec sort_spec_;
  uint64_t payload_hash_ = 0;
  uint64_t fingerprint_ = 0;
  size_t subtree_size_ = 1;
};

/// Canonical, order-stable serialization of a plan tree; two plans are the
/// same tree iff their canonical strings are equal. Used for plan-set dedup
/// in the enumeration algorithm (Figure 5).
std::string CanonicalString(const PlanPtr& plan);

/// Total number of operator nodes.
size_t PlanSize(const PlanPtr& plan);

/// Pre-order list of all nodes.
void CollectNodes(const PlanPtr& plan, std::vector<PlanPtr>* out);

/// One rewrite location: a node occurrence and the path that reaches it.
/// Unlike raw node pointers, paths stay unambiguous when hash-consing makes
/// the same node object occur several times in one plan.
struct PlanLocation {
  PlanPtr node;
  PlanPath path;
};

/// Pre-order list of all node occurrences with their paths.
void CollectLocations(const PlanPtr& plan, std::vector<PlanLocation>* out);

/// The node occurrence at `path`; TQP_CHECKs that the path is valid.
const PlanPtr& NodeAtPath(const PlanPtr& root, const PlanPath& path);

/// Replaces the subtree at `path` with `replacement`, rebuilding only the
/// spine from the location to the root (path copying). The untouched
/// siblings are shared with the input plan.
PlanPtr ReplaceAtPath(const PlanPtr& root, const PlanPath& path,
                      PlanPtr replacement);

/// The fingerprint ReplaceAtPath(root, path, replacement) would produce,
/// computed along the spine without constructing any node. Lets the
/// enumerator probe its memo before deciding to materialize a rewrite.
uint64_t FingerprintAtPath(const PlanPtr& root, const PlanPath& path,
                           uint64_t replacement_fingerprint);

/// True iff `target` is structurally equal to the (unconstructed) plan
/// "ReplaceAtPath(base, path, replacement)". Off-spine subtrees short-circuit
/// by pointer when shared, so confirming a memo probe on hash-consed plans is
/// O(spine + replacement).
bool EqualsWithReplacement(const PlanPtr& target, const PlanPtr& base,
                           const PlanPath& path, const PlanPtr& replacement);

/// Replaces `target` (by node identity) with `replacement` inside `root`,
/// rebuilding the spine. Returns the (possibly new) root; returns `root`
/// unchanged if `target` does not occur. Replaces every occurrence, so it is
/// only safe on proper trees; rule application uses ReplaceAtPath instead.
PlanPtr ReplaceNode(const PlanPtr& root, const PlanNode* target,
                    PlanPtr replacement);

/// Deep-copies a plan: every node is fresh (payloads are shared). Needed
/// when one logical subexpression is used twice in a plan, since plans must
/// be proper trees for annotation.
PlanPtr ClonePlan(const PlanPtr& plan);

}  // namespace tqp

#endif  // TQP_ALGEBRA_PLAN_H_
