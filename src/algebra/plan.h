// Logical query plans: immutable operator trees over the extended algebra.
//
// The node kinds cover every operation of Table 1 plus the transfer
// operations TS/TD of the layered architecture (Section 4.5). Nodes are
// immutable and shared between plans; a rewrite rebuilds only the spine from
// the rewritten location to the root. All derived information (schemas,
// orders, guarantees, properties, cardinalities) lives outside the nodes in
// PlanAnnotations (see derivation.h), so shared subtrees can carry different
// annotations in different plans.
#ifndef TQP_ALGEBRA_PLAN_H_
#define TQP_ALGEBRA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "core/catalog.h"

namespace tqp {

/// The operations of the extended algebra (Table 1) plus transfers.
enum class OpKind {
  kScan,         // named base relation
  kSelect,       // σ_P
  kProject,      // π_{f1..fn}
  kUnionAll,     // ⊎ (concatenation)
  kProduct,      // ×
  kDifference,   // \  (multiset difference)
  kAggregate,    // ℵ_{G;F}
  kRdup,         // rdup
  kProductT,     // ×^T
  kDifferenceT,  // \^T
  kAggregateT,   // ℵ^T
  kRdupT,        // rdup^T
  kUnion,        // ∪ (max-multiplicity union)
  kUnionT,       // ∪^T
  kSort,         // sort_A
  kCoalesce,     // coal^T
  kTransferS,    // T_S : DBMS → stratum
  kTransferD,    // T_D : stratum → DBMS
};

const char* OpKindName(OpKind k);

/// True for ×T, \T, ℵT, rdupT, ∪T, coalT (operations with built-in temporal
/// semantics, snapshot-reducible to their conventional counterparts).
bool IsTemporalOp(OpKind k);

/// True for rdupT, coalT, \T, ∪T — the order-sensitive operations of
/// Section 6 (multiset-equivalent inputs may yield non-multiset-equivalent
/// outputs).
bool IsOrderSensitiveOp(OpKind k);

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// One immutable operator node.
class PlanNode {
 public:
  OpKind kind() const { return kind_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  const PlanPtr& child(size_t i) const { return children_[i]; }
  size_t arity() const { return children_.size(); }

  const std::string& rel_name() const { return rel_name_; }
  const ExprPtr& predicate() const { return predicate_; }
  const std::vector<ProjItem>& projections() const { return projections_; }
  const std::vector<std::string>& group_by() const { return group_by_; }
  const std::vector<AggSpec>& aggregates() const { return aggregates_; }
  const SortSpec& sort_spec() const { return sort_spec_; }

  /// Single-line description of this operator (kind + payload).
  std::string Describe() const;

  // ---- Builders ----
  static PlanPtr Scan(std::string rel_name);
  static PlanPtr Select(PlanPtr input, ExprPtr predicate);
  static PlanPtr Project(PlanPtr input, std::vector<ProjItem> items);
  static PlanPtr UnionAll(PlanPtr left, PlanPtr right);
  static PlanPtr Product(PlanPtr left, PlanPtr right);
  static PlanPtr Difference(PlanPtr left, PlanPtr right);
  static PlanPtr Aggregate(PlanPtr input, std::vector<std::string> group_by,
                           std::vector<AggSpec> aggs);
  static PlanPtr Rdup(PlanPtr input);
  static PlanPtr ProductT(PlanPtr left, PlanPtr right);
  static PlanPtr DifferenceT(PlanPtr left, PlanPtr right);
  static PlanPtr AggregateT(PlanPtr input, std::vector<std::string> group_by,
                            std::vector<AggSpec> aggs);
  static PlanPtr RdupT(PlanPtr input);
  static PlanPtr Union(PlanPtr left, PlanPtr right);
  static PlanPtr UnionT(PlanPtr left, PlanPtr right);
  static PlanPtr Sort(PlanPtr input, SortSpec spec);
  static PlanPtr Coalesce(PlanPtr input);
  static PlanPtr TransferS(PlanPtr input);  // DBMS → stratum
  static PlanPtr TransferD(PlanPtr input);  // stratum → DBMS

  /// Rebuilds this node with new children (payload preserved).
  static PlanPtr WithChildren(const PlanPtr& node,
                              std::vector<PlanPtr> children);

 protected:
  PlanNode() = default;

  OpKind kind_ = OpKind::kScan;
  std::vector<PlanPtr> children_;
  std::string rel_name_;
  ExprPtr predicate_;
  std::vector<ProjItem> projections_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggregates_;
  SortSpec sort_spec_;
};

/// Canonical, order-stable serialization of a plan tree; two plans are the
/// same tree iff their canonical strings are equal. Used for plan-set dedup
/// in the enumeration algorithm (Figure 5).
std::string CanonicalString(const PlanPtr& plan);

/// Total number of operator nodes.
size_t PlanSize(const PlanPtr& plan);

/// Pre-order list of all nodes.
void CollectNodes(const PlanPtr& plan, std::vector<PlanPtr>* out);

/// Replaces `target` (by node identity) with `replacement` inside `root`,
/// rebuilding the spine. Returns the (possibly new) root; returns `root`
/// unchanged if `target` does not occur.
PlanPtr ReplaceNode(const PlanPtr& root, const PlanNode* target,
                    PlanPtr replacement);

/// Deep-copies a plan: every node is fresh (payloads are shared). Needed
/// when one logical subexpression is used twice in a plan, since plans must
/// be proper trees for annotation.
PlanPtr ClonePlan(const PlanPtr& plan);

}  // namespace tqp

#endif  // TQP_ALGEBRA_PLAN_H_
