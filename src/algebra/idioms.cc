#include "algebra/idioms.h"

namespace tqp {

PlanPtr Join(PlanPtr left, PlanPtr right, ExprPtr predicate) {
  return PlanNode::Select(
      PlanNode::Product(std::move(left), std::move(right)),
      std::move(predicate));
}

PlanPtr JoinT(PlanPtr left, PlanPtr right, ExprPtr predicate) {
  return PlanNode::Select(
      PlanNode::ProductT(std::move(left), std::move(right)),
      std::move(predicate));
}

Result<PlanPtr> NaturalishJoin(PlanPtr left, PlanPtr right,
                               const std::vector<std::string>& attrs,
                               const Catalog& catalog, bool temporal) {
  if (attrs.empty()) {
    return Status::InvalidArgument("join attribute list is empty");
  }
  // Resolve each side's schema to apply the product renaming.
  QueryContract probe = QueryContract::Multiset();
  TQP_ASSIGN_OR_RETURN(left_ann, AnnotatedPlan::Make(left, &catalog, probe));
  TQP_ASSIGN_OR_RETURN(right_ann,
                       AnnotatedPlan::Make(right, &catalog, probe));
  const Schema& ls = left_ann.root_info().schema;
  const Schema& rs = right_ann.root_info().schema;

  ExprPtr pred;
  for (const std::string& a : attrs) {
    if (!ls.HasAttr(a) || !rs.HasAttr(a)) {
      return Status::InvalidArgument("join attribute '" + a +
                                     "' missing on one side");
    }
    // Both sides have the attribute, so the product renames it.
    ExprPtr eq = Expr::Compare(CompareOp::kEq, Expr::Attr("1." + a),
                               Expr::Attr("2." + a));
    pred = pred ? Expr::And(pred, eq) : eq;
  }
  PlanPtr prod = temporal
                     ? PlanNode::ProductT(std::move(left), std::move(right))
                     : PlanNode::Product(std::move(left), std::move(right));
  return PlanNode::Select(std::move(prod), std::move(pred));
}

PlanPtr SqlUnion(PlanPtr left, PlanPtr right, bool temporal) {
  PlanPtr all = PlanNode::UnionAll(std::move(left), std::move(right));
  return temporal ? PlanNode::RdupT(std::move(all))
                  : PlanNode::Rdup(std::move(all));
}

PlanPtr SqlIntersect(PlanPtr left, PlanPtr right, bool temporal) {
  // The left expression occurs twice; plans must be proper trees, so the
  // second occurrence is a deep copy.
  if (temporal) {
    PlanPtr l1 = PlanNode::RdupT(left);
    PlanPtr l2 = PlanNode::RdupT(ClonePlan(left));
    return PlanNode::DifferenceT(
        l1, PlanNode::DifferenceT(l2, std::move(right)));
  }
  PlanPtr l1 = PlanNode::Rdup(left);
  PlanPtr l2 = PlanNode::Rdup(ClonePlan(left));
  return PlanNode::Difference(l1,
                              PlanNode::Difference(l2, std::move(right)));
}

Result<PlanPtr> Timeslice(PlanPtr input, TimePoint t, const Catalog& catalog) {
  QueryContract probe = QueryContract::Multiset();
  TQP_ASSIGN_OR_RETURN(ann, AnnotatedPlan::Make(input, &catalog, probe));
  const Schema& schema = ann.root_info().schema;
  if (!schema.IsTemporal()) {
    return Status::InvalidArgument("timeslice requires a temporal input");
  }
  ExprPtr contains = Expr::And(
      Expr::Compare(CompareOp::kLe, Expr::Attr(kT1),
                    Expr::Const(Value::Time(t))),
      Expr::Compare(CompareOp::kGt, Expr::Attr(kT2),
                    Expr::Const(Value::Time(t))));
  PlanPtr selected = PlanNode::Select(std::move(input), std::move(contains));
  std::vector<ProjItem> items;
  for (const std::string& a : schema.NonTemporalAttrNames()) {
    items.push_back(ProjItem::Pass(a));
  }
  return PlanNode::Project(std::move(selected), std::move(items));
}

PlanPtr Normalize(PlanPtr input) {
  return PlanNode::Coalesce(PlanNode::RdupT(std::move(input)));
}

}  // namespace tqp
