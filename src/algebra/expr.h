// Scalar expressions: selection predicates and projection functions.
//
// Expressions are immutable trees shared between plans. They evaluate against
// a (tuple, schema) pair and expose the attribute set they reference — the
// paper's attr() function used by rule preconditions (e.g., C3 requires
// T1, T2 ∉ attr(P)).
#ifndef TQP_ALGEBRA_EXPR_H_
#define TQP_ALGEBRA_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/common.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "core/value.h"

namespace tqp {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Expression node kinds.
enum class ExprKind {
  kAttr,     // attribute reference by name
  kConst,    // literal value
  kCompare,  // binary comparison
  kAnd,
  kOr,
  kNot,
  kArith,     // binary arithmetic
  kOverlaps,  // OVERLAPS(a_begin, a_end, b_begin, b_end): period predicate
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// An immutable scalar expression node.
class Expr {
 public:
  static ExprPtr Attr(std::string name);
  static ExprPtr Const(Value v);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  /// True iff periods [a,b) and [c,d) share a time point.
  static ExprPtr Overlaps(ExprPtr a, ExprPtr b, ExprPtr c, ExprPtr d);

  ExprKind kind() const { return kind_; }
  const std::string& attr_name() const { return attr_name_; }
  const Value& constant() const { return constant_; }
  CompareOp compare_op() const { return compare_op_; }
  ArithOp arith_op() const { return arith_op_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Evaluates against a tuple; attribute lookups resolve via `schema`.
  Result<Value> Eval(const Tuple& tuple, const Schema& schema) const;

  /// Evaluates as a boolean predicate (NULL and non-bool => false).
  bool EvalPredicate(const Tuple& tuple, const Schema& schema) const;

  /// All attribute names referenced (the paper's attr() function).
  std::set<std::string> ReferencedAttrs() const;

  /// True iff neither T1 nor T2 is referenced (rule C3/C4 preconditions).
  bool IsTimeFree() const;

  /// Structural rendering; doubles as a canonical form for plan dedup.
  std::string ToString() const;

  /// Structural 64-bit hash, computed once at construction (bottom-up from
  /// the children's hashes). Equal expressions have equal hashes; the
  /// converse is confirmed with Equals() where it matters.
  uint64_t hash() const { return hash_; }

  /// Structural equality (pointer short-circuit, then hash, then recursion).
  static bool Equals(const ExprPtr& a, const ExprPtr& b);

  /// Rewrites attribute references according to the given old->new mapping.
  ExprPtr RenameAttrs(
      const std::vector<std::pair<std::string, std::string>>& mapping) const;

 private:
  Expr() = default;

  /// Seals the node: derives hash_ from the payload and children. Must be the
  /// last step of every construction path.
  void ComputeHash();

  ExprKind kind_ = ExprKind::kConst;
  std::string attr_name_;
  Value constant_;
  CompareOp compare_op_ = CompareOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  std::vector<ExprPtr> children_;
  uint64_t hash_ = 0;
};

/// One item of a projection list: an expression and its output name.
struct ProjItem {
  ExprPtr expr;
  std::string name;

  /// Shorthand for a pass-through column.
  static ProjItem Pass(const std::string& attr) {
    return ProjItem{Expr::Attr(attr), attr};
  }
  /// Shorthand for a renamed pass-through column.
  static ProjItem Rename(const std::string& attr, const std::string& out) {
    return ProjItem{Expr::Attr(attr), out};
  }
};

/// Aggregate functions supported by ℵ and ℵT.
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc f);

/// One aggregate computation: function, input attribute (ignored for COUNT),
/// and output attribute name.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  std::string attr;      // input attribute; empty for COUNT(*)
  std::string out_name;  // result attribute name
};

}  // namespace tqp

#endif  // TQP_ALGEBRA_EXPR_H_
