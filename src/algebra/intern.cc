#include "algebra/intern.h"

#include "core/hash.h"

namespace tqp {

bool PlanInterner::IsCanonical(const PlanNode* node) const {
  uint64_t fp = node->fingerprint();
  MaybeLockGuard lock(LockFor(fp));
  return ShardFor(fp).canonical.count(node) > 0;
}

PlanPtr PlanInterner::Intern(const PlanPtr& plan) {
  // Fast path: the node is already canonical (common for rule replacements
  // that reuse operand subtrees of an interned plan).
  uint64_t fp = plan->fingerprint();
  {
    MaybeLockGuard lock(LockFor(fp));
    if (ShardFor(fp).canonical.count(plan.get()) > 0) return plan;
  }

  // Intern children first so the bucket comparison below can compare
  // children by pointer. Child probes lock their own shards; no lock is held
  // across the recursion, so shard lock acquisition never nests.
  bool changed = false;
  std::vector<PlanPtr> children;
  children.reserve(plan->children().size());
  for (const PlanPtr& c : plan->children()) {
    PlanPtr ic = Intern(c);
    changed |= (ic.get() != c.get());
    children.push_back(std::move(ic));
  }
  PlanPtr candidate =
      changed ? PlanNode::WithChildren(plan, std::move(children)) : plan;

  // Probe + insert are atomic under the shard's stripe lock: two threads
  // racing to intern equal nodes serialize here, exactly one inserts, and
  // the other resolves to the winner's canonical node.
  Shard& shard = ShardFor(fp);
  MaybeLockGuard lock(LockFor(fp));
  std::vector<PlanPtr>& bucket = shard.buckets[fp];
  for (const PlanPtr& existing : bucket) {
    if (PlanNode::SameShallow(*existing, *candidate)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return existing;
    }
  }
  bucket.push_back(candidate);
  shard.canonical.insert(candidate.get());
  node_count_.fetch_add(1, std::memory_order_relaxed);
  return candidate;
}

PlanPtr PlanInterner::InternWithChild(const PlanPtr& proto, size_t child_index,
                                      const PlanPtr& new_child) {
  if (proto->child(child_index).get() == new_child.get()) return proto;

  // Predict the fingerprint of the rebuilt node without constructing it.
  uint64_t h =
      PlanNode::FingerprintPrefix(proto->kind(), proto->payload_hash());
  for (size_t i = 0; i < proto->arity(); ++i) {
    const PlanPtr& c = i == child_index ? new_child : proto->child(i);
    h = HashCombine(h, c->fingerprint());
  }

  Shard& shard = ShardFor(h);
  MaybeLockGuard lock(LockFor(h));
  std::vector<PlanPtr>& bucket = shard.buckets[h];
  for (const PlanPtr& existing : bucket) {
    if (existing->arity() != proto->arity()) continue;
    bool same = PlanNode::SamePayload(*existing, *proto);
    for (size_t i = 0; same && i < proto->arity(); ++i) {
      const PlanPtr& c = i == child_index ? new_child : proto->child(i);
      same = existing->child(i).get() == c.get();
    }
    if (same) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return existing;
    }
  }

  std::vector<PlanPtr> children = proto->children();
  children[child_index] = new_child;
  PlanPtr built = PlanNode::WithChildren(proto, std::move(children));
  TQP_DCHECK(built->fingerprint() == h);
  bucket.push_back(built);
  shard.canonical.insert(built.get());
  node_count_.fetch_add(1, std::memory_order_relaxed);
  return built;
}

PlanPtr PlanInterner::RewriteInternedImpl(const PlanPtr& root,
                                          const PlanPath& path, size_t depth,
                                          PlanPtr replacement) {
  if (depth == path.size()) return Intern(replacement);
  uint32_t step = path[depth];
  TQP_CHECK(step < root->arity());
  PlanPtr child = RewriteInternedImpl(root->child(step), path, depth + 1,
                                      std::move(replacement));
  return InternWithChild(root, step, child);
}

PlanPtr PlanInterner::RewriteInterned(const PlanPtr& root, const PlanPath& path,
                                      PlanPtr replacement) {
  TQP_DCHECK(IsCanonical(root.get()));
  return RewriteInternedImpl(root, path, 0, std::move(replacement));
}

}  // namespace tqp
