// Hash-consing of plan nodes.
//
// A PlanInterner maps every structurally distinct plan node to one canonical
// immutable object, so plan identity becomes a pointer comparison and
// equivalent subtrees are physically shared between all plans that contain
// them. The memo-based enumerator (opt/enumerate.h) interns every candidate
// plan it produces: deduplication is then an O(1) hash-map probe on the
// canonical root pointer instead of an O(n) canonical-string serialization,
// and per-subtree derived state (see DerivationCache) can be reused across
// the whole plan space.
//
// The table buckets nodes by their structural fingerprint and confirms every
// bucket hit with a payload/children comparison, so a 64-bit collision can
// never merge two distinct plans.
//
// Concurrency: the table is sharded by fingerprint into striped-lock shards.
// By default no locks are taken (the single-threaded fast path is lock-free
// and byte-identical to the unsharded original); EnableConcurrentAccess()
// switches every probe/insert to its shard's stripe lock, which is what lets
// tqp::Engine share one interner between concurrent sessions.
#ifndef TQP_ALGEBRA_INTERN_H_
#define TQP_ALGEBRA_INTERN_H_

#include <atomic>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algebra/plan.h"
#include "core/sync.h"

namespace tqp {

/// An interning table for plan nodes. Canonical nodes are kept alive by the
/// table for its lifetime. Not thread-safe by default; see
/// EnableConcurrentAccess().
class PlanInterner {
 public:
  /// Returns the canonical node for `plan`, interning the whole subtree
  /// bottom-up. The result is structurally equal to the input, and pointer
  /// identity on results coincides with structural equality:
  ///   Intern(a).get() == Intern(b).get()  iff  PlanNode::Equal(a, b).
  PlanPtr Intern(const PlanPtr& plan);

  /// Path-copy rewrite fused with interning: returns the canonical plan
  /// equal to "`root` with the subtree at `path` replaced by `replacement`".
  /// `root` must be canonical. Spine nodes are probed by their predicted
  /// fingerprint (payload hash + child fingerprints) and only constructed
  /// when no canonical equivalent exists yet — a rewrite that lands on an
  /// already-seen plan allocates nothing.
  PlanPtr RewriteInterned(const PlanPtr& root, const PlanPath& path,
                          PlanPtr replacement);

  /// True iff `node` is a canonical node owned by this table.
  bool IsCanonical(const PlanNode* node) const;

  /// Number of distinct nodes owned by the table.
  size_t unique_nodes() const {
    return node_count_.load(std::memory_order_relaxed);
  }

  /// Number of Intern() node visits resolved to an existing canonical node.
  size_t hits() const { return hits_.load(std::memory_order_relaxed); }

  /// Switches the table to concurrent mode: every probe/insert takes the
  /// striped lock of the shard it touches. One-way (the flag is a monotonic
  /// relaxed atomic, so concurrent re-enables — e.g. every parallel search
  /// over one session interner — are benign), and must be called before the
  /// table is first shared between threads. Interning stays deterministic
  /// in what it *stores* (the set of canonical nodes is a pure function of
  /// the set of interned plans); only which racing thread's
  /// structurally-equal node becomes the canonical object depends on timing,
  /// and pointer values are never observable in results.
  void EnableConcurrentAccess() {
    concurrent_.store(true, std::memory_order_relaxed);
  }

 private:
  /// One fingerprint-routed shard: the bucket table plus the canonical-node
  /// membership set for nodes whose fingerprint falls in this shard.
  struct Shard {
    std::unordered_map<uint64_t, std::vector<PlanPtr>> buckets;
    std::unordered_set<const PlanNode*> canonical;
  };

  Shard& ShardFor(uint64_t fp) { return shards_[StripedMutex::IndexOf(fp)]; }
  const Shard& ShardFor(uint64_t fp) const {
    return shards_[StripedMutex::IndexOf(fp)];
  }
  std::mutex* LockFor(uint64_t fp) const {
    return concurrent_.load(std::memory_order_relaxed) ? &mu_.For(fp)
                                                       : nullptr;
  }

  /// Canonical node equal to "`proto` with its `child_index`-th child being
  /// `new_child`"; constructs it only on a table miss. `proto`'s other
  /// children and `new_child` must be canonical.
  PlanPtr InternWithChild(const PlanPtr& proto, size_t child_index,
                          const PlanPtr& new_child);

  PlanPtr RewriteInternedImpl(const PlanPtr& root, const PlanPath& path,
                              size_t depth, PlanPtr replacement);

  Shard shards_[StripedMutex::kStripes];
  mutable StripedMutex mu_;
  std::atomic<bool> concurrent_{false};
  std::atomic<size_t> node_count_{0};
  std::atomic<size_t> hits_{0};
};

}  // namespace tqp

#endif  // TQP_ALGEBRA_INTERN_H_
