// Hash-consing of plan nodes.
//
// A PlanInterner maps every structurally distinct plan node to one canonical
// immutable object, so plan identity becomes a pointer comparison and
// equivalent subtrees are physically shared between all plans that contain
// them. The memo-based enumerator (opt/enumerate.h) interns every candidate
// plan it produces: deduplication is then an O(1) hash-map probe on the
// canonical root pointer instead of an O(n) canonical-string serialization,
// and per-subtree derived state (see DerivationCache) can be reused across
// the whole plan space.
//
// The table buckets nodes by their structural fingerprint and confirms every
// bucket hit with a payload/children comparison, so a 64-bit collision can
// never merge two distinct plans.
#ifndef TQP_ALGEBRA_INTERN_H_
#define TQP_ALGEBRA_INTERN_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algebra/plan.h"

namespace tqp {

/// An interning table for plan nodes. Not thread-safe; each enumeration owns
/// one. Canonical nodes are kept alive by the table for its lifetime.
class PlanInterner {
 public:
  /// Returns the canonical node for `plan`, interning the whole subtree
  /// bottom-up. The result is structurally equal to the input, and pointer
  /// identity on results coincides with structural equality:
  ///   Intern(a).get() == Intern(b).get()  iff  PlanNode::Equal(a, b).
  PlanPtr Intern(const PlanPtr& plan);

  /// Path-copy rewrite fused with interning: returns the canonical plan
  /// equal to "`root` with the subtree at `path` replaced by `replacement`".
  /// `root` must be canonical. Spine nodes are probed by their predicted
  /// fingerprint (payload hash + child fingerprints) and only constructed
  /// when no canonical equivalent exists yet — a rewrite that lands on an
  /// already-seen plan allocates nothing.
  PlanPtr RewriteInterned(const PlanPtr& root, const PlanPath& path,
                          PlanPtr replacement);

  /// True iff `node` is a canonical node owned by this table.
  bool IsCanonical(const PlanNode* node) const {
    return canonical_.count(node) > 0;
  }

  /// Number of distinct nodes owned by the table.
  size_t unique_nodes() const { return canonical_.size(); }

  /// Number of Intern() node visits resolved to an existing canonical node.
  size_t hits() const { return hits_; }

 private:
  /// Canonical node equal to "`proto` with its `child_index`-th child being
  /// `new_child`"; constructs it only on a table miss. `proto`'s other
  /// children and `new_child` must be canonical.
  PlanPtr InternWithChild(const PlanPtr& proto, size_t child_index,
                          const PlanPtr& new_child);

  PlanPtr RewriteInternedImpl(const PlanPtr& root, const PlanPath& path,
                              size_t depth, PlanPtr replacement);

  std::unordered_map<uint64_t, std::vector<PlanPtr>> buckets_;
  std::unordered_set<const PlanNode*> canonical_;
  size_t hits_ = 0;
};

}  // namespace tqp

#endif  // TQP_ALGEBRA_INTERN_H_
