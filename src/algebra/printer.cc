#include "algebra/printer.h"

namespace tqp {

namespace {

void PrintNode(const PlanPtr& node, const AnnotatedPlan* ann,
               const PrintOptions& opts, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node->Describe());
  if (ann != nullptr) {
    const NodeInfo& info = ann->info(node.get());
    if (opts.show_properties) {
      out->append(" ");
      out->append(info.PropertiesBrackets());
    }
    if (opts.show_site) {
      out->append(" @");
      out->append(SiteName(info.site));
    }
    if (opts.show_order) {
      out->append(" order=");
      out->append(SortSpecToString(info.order));
    }
    if (opts.show_cardinality) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " ~%.0f", info.cardinality);
      out->append(buf);
    }
  }
  out->append("\n");
  for (const PlanPtr& c : node->children()) {
    PrintNode(c, ann, opts, depth + 1, out);
  }
}

}  // namespace

std::string PrintPlan(const PlanPtr& plan) {
  std::string out;
  PrintNode(plan, nullptr, PrintOptions{}, 0, &out);
  return out;
}

std::string PrintPlan(const AnnotatedPlan& plan, const PrintOptions& opts) {
  std::string out;
  PrintNode(plan.plan(), &plan, opts, 0, &out);
  return out;
}

}  // namespace tqp
