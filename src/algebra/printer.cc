#include "algebra/printer.h"

namespace tqp {

namespace {

void PrintNode(const PlanPtr& node, const AnnotatedPlan* ann,
               const PrintOptions& opts, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node->Describe());
  if (ann != nullptr) {
    const NodeInfo& info = ann->info(node.get());
    if (opts.show_properties) {
      out->append(" ");
      out->append(info.PropertiesBrackets());
    }
    if (opts.show_site) {
      out->append(" @");
      out->append(SiteName(info.site));
    }
    if (opts.show_order) {
      out->append(" order=");
      out->append(SortSpecToString(info.order));
    }
    if (opts.show_cardinality) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " ~%.0f", info.cardinality);
      out->append(buf);
    }
  }
  out->append("\n");
  for (const PlanPtr& c : node->children()) {
    PrintNode(c, ann, opts, depth + 1, out);
  }
}

void PrintProfileNode(const ProfileNode& node, const ProfilePrintOptions& opts,
                      int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.op);
  char buf[64];
  std::snprintf(buf, sizeof(buf), " | rows=%lld",
                static_cast<long long>(node.rows_out));
  out->append(buf);
  if (node.rows_in > 0) {
    std::snprintf(buf, sizeof(buf), " in=%lld",
                  static_cast<long long>(node.rows_in));
    out->append(buf);
  }
  if (node.batches > 0) {
    std::snprintf(buf, sizeof(buf), " batches=%lld",
                  static_cast<long long>(node.batches));
    out->append(buf);
  }
  if (node.result_cache_hit) out->append(" | cache-hit");
  if (node.backend_pushed) out->append(" | pushed");
  if (opts.show_times) {
    std::snprintf(buf, sizeof(buf), " | %.3fms (self %.3fms)",
                  static_cast<double>(node.wall_ns) / 1e6,
                  static_cast<double>(node.SelfNs()) / 1e6);
    out->append(buf);
  }
  out->append("\n");
  for (const ProfileNode& c : node.children) {
    PrintProfileNode(c, opts, depth + 1, out);
  }
}

}  // namespace

std::string PrintPlan(const PlanPtr& plan) {
  std::string out;
  PrintNode(plan, nullptr, PrintOptions{}, 0, &out);
  return out;
}

std::string PrintPlan(const AnnotatedPlan& plan, const PrintOptions& opts) {
  std::string out;
  PrintNode(plan.plan(), &plan, opts, 0, &out);
  return out;
}

std::string PrintProfile(const ProfileNode& root,
                         const ProfilePrintOptions& opts) {
  std::string out;
  PrintProfileNode(root, opts, 0, &out);
  return out;
}

}  // namespace tqp
