#include "algebra/derivation.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

namespace tqp {

const char* ResultTypeName(ResultType t) {
  switch (t) {
    case ResultType::kList:
      return "list";
    case ResultType::kMultiset:
      return "multiset";
    case ResultType::kSet:
      return "set";
  }
  return "?";
}

std::string NodeInfo::PropertiesBrackets() const {
  std::string out = "[";
  out += order_required ? "T" : "-";
  out += " ";
  out += duplicates_relevant ? "T" : "-";
  out += " ";
  out += period_preserving ? "T" : "-";
  out += "]";
  return out;
}

Result<ValueType> DeriveExprType(const ExprPtr& expr, const Schema& schema) {
  switch (expr->kind()) {
    case ExprKind::kAttr: {
      int idx = schema.IndexOf(expr->attr_name());
      if (idx < 0) {
        return Status::InvalidArgument("unknown attribute '" +
                                       expr->attr_name() + "' in " +
                                       schema.ToString());
      }
      return schema.attr(static_cast<size_t>(idx)).type;
    }
    case ExprKind::kConst:
      return expr->constant().type();
    case ExprKind::kCompare:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot:
    case ExprKind::kOverlaps:
      for (const ExprPtr& c : expr->children()) {
        TQP_ASSIGN_OR_RETURN(t, DeriveExprType(c, schema));
        (void)t;
      }
      return ValueType::kInt;
    case ExprKind::kArith: {
      TQP_ASSIGN_OR_RETURN(lt, DeriveExprType(expr->children()[0], schema));
      TQP_ASSIGN_OR_RETURN(rt, DeriveExprType(expr->children()[1], schema));
      if (expr->arith_op() == ArithOp::kDiv) return ValueType::kDouble;
      if (lt == ValueType::kDouble || rt == ValueType::kDouble) {
        return ValueType::kDouble;
      }
      if (lt == ValueType::kTime || rt == ValueType::kTime) {
        return ValueType::kTime;
      }
      return ValueType::kInt;
    }
  }
  return Status::Error("unreachable expression kind");
}

namespace {

// Attribute renaming used by product: a left attribute that clashes with a
// right attribute becomes "1.<name>", and vice versa with "2.".
std::string ProductName(const std::string& name, const Schema& other,
                        const char* prefix) {
  if (other.HasAttr(name)) return std::string(prefix) + name;
  return name;
}

Status AddAttr(Schema* s, Attribute a) {
  if (s->HasAttr(a.name)) {
    return Status::InvalidArgument("duplicate attribute '" + a.name +
                                   "' in derived schema");
  }
  s->Add(std::move(a));
  return Status::OK();
}

}  // namespace

Result<Schema> DeriveSchema(const PlanNode& node,
                            const std::vector<Schema>& child_schemas,
                            const Catalog& catalog) {
  switch (node.kind()) {
    case OpKind::kScan: {
      const CatalogEntry* entry = catalog.Find(node.rel_name());
      if (entry == nullptr) {
        return Status::NotFound("relation '" + node.rel_name() + "'");
      }
      return entry->data.schema();
    }
    case OpKind::kSelect: {
      const Schema& in = child_schemas[0];
      for (const std::string& a : node.predicate()->ReferencedAttrs()) {
        if (!in.HasAttr(a)) {
          return Status::InvalidArgument("selection references unknown '" + a +
                                         "' in " + in.ToString());
        }
      }
      return in;
    }
    case OpKind::kProject: {
      const Schema& in = child_schemas[0];
      Schema out;
      for (const ProjItem& item : node.projections()) {
        TQP_ASSIGN_OR_RETURN(t, DeriveExprType(item.expr, in));
        TQP_RETURN_IF_ERROR(AddAttr(&out, Attribute{item.name, t}));
      }
      return out;
    }
    case OpKind::kUnionAll:
    case OpKind::kUnion:
    case OpKind::kDifference: {
      if (child_schemas[0] != child_schemas[1]) {
        return Status::InvalidArgument(
            std::string(OpKindName(node.kind())) +
            " requires identical schemas: " + child_schemas[0].ToString() +
            " vs " + child_schemas[1].ToString());
      }
      return child_schemas[0];
    }
    case OpKind::kUnionT:
    case OpKind::kDifferenceT: {
      if (child_schemas[0] != child_schemas[1]) {
        return Status::InvalidArgument(
            std::string(OpKindName(node.kind())) +
            " requires identical schemas");
      }
      if (!child_schemas[0].IsTemporal()) {
        return Status::InvalidArgument(
            std::string(OpKindName(node.kind())) +
            " requires temporal arguments");
      }
      return child_schemas[0];
    }
    case OpKind::kProduct: {
      const Schema& l = child_schemas[0];
      const Schema& r = child_schemas[1];
      Schema out;
      for (const Attribute& a : l.attrs()) {
        TQP_RETURN_IF_ERROR(
            AddAttr(&out, Attribute{ProductName(a.name, r, "1."), a.type}));
      }
      for (const Attribute& a : r.attrs()) {
        TQP_RETURN_IF_ERROR(
            AddAttr(&out, Attribute{ProductName(a.name, l, "2."), a.type}));
      }
      return out;
    }
    case OpKind::kProductT: {
      const Schema& l = child_schemas[0];
      const Schema& r = child_schemas[1];
      if (!l.IsTemporal() || !r.IsTemporal()) {
        return Status::InvalidArgument("productT requires temporal arguments");
      }
      // Non-time attributes of both sides (clash-prefixed), the retained
      // argument timestamps 1.T1,1.T2,2.T1,2.T2, and the overlap as T1,T2.
      Schema out;
      for (const Attribute& a : l.attrs()) {
        if (a.name == kT1 || a.name == kT2) continue;
        TQP_RETURN_IF_ERROR(
            AddAttr(&out, Attribute{ProductName(a.name, r, "1."), a.type}));
      }
      for (const Attribute& a : r.attrs()) {
        if (a.name == kT1 || a.name == kT2) continue;
        TQP_RETURN_IF_ERROR(
            AddAttr(&out, Attribute{ProductName(a.name, l, "2."), a.type}));
      }
      TQP_RETURN_IF_ERROR(AddAttr(&out, Attribute{"1.T1", ValueType::kTime}));
      TQP_RETURN_IF_ERROR(AddAttr(&out, Attribute{"1.T2", ValueType::kTime}));
      TQP_RETURN_IF_ERROR(AddAttr(&out, Attribute{"2.T1", ValueType::kTime}));
      TQP_RETURN_IF_ERROR(AddAttr(&out, Attribute{"2.T2", ValueType::kTime}));
      TQP_RETURN_IF_ERROR(AddAttr(&out, Attribute{kT1, ValueType::kTime}));
      TQP_RETURN_IF_ERROR(AddAttr(&out, Attribute{kT2, ValueType::kTime}));
      return out;
    }
    case OpKind::kAggregate: {
      const Schema& in = child_schemas[0];
      Schema out;
      for (const std::string& g : node.group_by()) {
        int idx = in.IndexOf(g);
        if (idx < 0) {
          return Status::InvalidArgument("unknown grouping attribute '" + g +
                                         "'");
        }
        TQP_RETURN_IF_ERROR(
            AddAttr(&out, in.attr(static_cast<size_t>(idx))));
      }
      for (const AggSpec& a : node.aggregates()) {
        ValueType t = ValueType::kInt;
        if (a.func == AggFunc::kAvg) {
          t = ValueType::kDouble;
        } else if (a.func != AggFunc::kCount) {
          int idx = in.IndexOf(a.attr);
          if (idx < 0) {
            return Status::InvalidArgument("unknown aggregate attribute '" +
                                           a.attr + "'");
          }
          t = in.attr(static_cast<size_t>(idx)).type;
        }
        TQP_RETURN_IF_ERROR(AddAttr(&out, Attribute{a.out_name, t}));
      }
      return out;
    }
    case OpKind::kAggregateT: {
      const Schema& in = child_schemas[0];
      if (!in.IsTemporal()) {
        return Status::InvalidArgument("aggregateT requires a temporal input");
      }
      for (const std::string& g : node.group_by()) {
        if (g == kT1 || g == kT2) {
          return Status::InvalidArgument(
              "aggregateT cannot group by time attributes");
        }
      }
      // Build as conventional aggregate, then append T1/T2.
      Schema out;
      for (const std::string& g : node.group_by()) {
        int idx = in.IndexOf(g);
        if (idx < 0) {
          return Status::InvalidArgument("unknown grouping attribute '" + g +
                                         "'");
        }
        TQP_RETURN_IF_ERROR(AddAttr(&out, in.attr(static_cast<size_t>(idx))));
      }
      for (const AggSpec& a : node.aggregates()) {
        ValueType t = ValueType::kInt;
        if (a.func == AggFunc::kAvg) {
          t = ValueType::kDouble;
        } else if (a.func != AggFunc::kCount) {
          int idx = in.IndexOf(a.attr);
          if (idx < 0) {
            return Status::InvalidArgument("unknown aggregate attribute '" +
                                           a.attr + "'");
          }
          t = in.attr(static_cast<size_t>(idx)).type;
        }
        TQP_RETURN_IF_ERROR(AddAttr(&out, Attribute{a.out_name, t}));
      }
      TQP_RETURN_IF_ERROR(AddAttr(&out, Attribute{kT1, ValueType::kTime}));
      TQP_RETURN_IF_ERROR(AddAttr(&out, Attribute{kT2, ValueType::kTime}));
      return out;
    }
    case OpKind::kRdup: {
      const Schema& in = child_schemas[0];
      if (!in.IsTemporal()) return in;
      // The result of regular duplicate elimination is a snapshot relation
      // and thus cannot include attributes named T1 or T2 (Figure 3): the
      // time attributes are renamed with a "1." prefix.
      Schema out;
      for (const Attribute& a : in.attrs()) {
        if (a.name == kT1 || a.name == kT2) {
          TQP_RETURN_IF_ERROR(AddAttr(&out, Attribute{"1." + a.name, a.type}));
        } else {
          TQP_RETURN_IF_ERROR(AddAttr(&out, a));
        }
      }
      return out;
    }
    case OpKind::kRdupT:
    case OpKind::kCoalesce: {
      const Schema& in = child_schemas[0];
      if (!in.IsTemporal()) {
        return Status::InvalidArgument(
            std::string(OpKindName(node.kind())) +
            " requires a temporal input");
      }
      return in;
    }
    case OpKind::kSort: {
      const Schema& in = child_schemas[0];
      for (const SortKey& k : node.sort_spec()) {
        if (!in.HasAttr(k.attr)) {
          return Status::InvalidArgument("sort on unknown attribute '" +
                                         k.attr + "'");
        }
      }
      return in;
    }
    case OpKind::kTransferS:
    case OpKind::kTransferD:
      return child_schemas[0];
  }
  return Status::Error("unreachable operator kind");
}

namespace {

// Truncates an order spec at the first key naming a time attribute — the
// paper's "Order(r) \ TimePairs" for operations that rewrite timestamps.
SortSpec DropTimeKeys(const SortSpec& order) {
  SortSpec out;
  for (const SortKey& k : order) {
    if (k.attr == kT1 || k.attr == kT2) break;
    out.push_back(k);
  }
  return out;
}

// Maps an order spec through an attribute rename (old name -> new name);
// truncates at the first unmapped attribute.
SortSpec RenameOrder(const SortSpec& order,
                     const std::vector<std::pair<std::string, std::string>>&
                         mapping) {
  SortSpec out;
  for (const SortKey& k : order) {
    bool mapped = false;
    for (const auto& [from, to] : mapping) {
      if (k.attr == from) {
        out.push_back(SortKey{to, k.ascending});
        mapped = true;
        break;
      }
    }
    if (!mapped) break;
  }
  return out;
}

double PredicateSelectivity(const ExprPtr& e, const CardinalityParams& p) {
  switch (e->kind()) {
    case ExprKind::kCompare:
      return e->compare_op() == CompareOp::kEq ? p.equality_selectivity
                                               : p.default_selectivity;
    case ExprKind::kAnd:
      return PredicateSelectivity(e->children()[0], p) *
             PredicateSelectivity(e->children()[1], p);
    case ExprKind::kOr: {
      double a = PredicateSelectivity(e->children()[0], p);
      double b = PredicateSelectivity(e->children()[1], p);
      return a + b - a * b;
    }
    case ExprKind::kNot:
      return 1.0 - PredicateSelectivity(e->children()[0], p);
    default:
      return p.default_selectivity;
  }
}

}  // namespace

NodeProps DeriveChildProps(const PlanNode& node, size_t child_index,
                           const NodeProps& parent, bool left_duplicate_free,
                           bool left_snapshot_dup_free,
                           bool child_snapshot_dup_free) {
  NodeProps out = parent;
  switch (node.kind()) {
    case OpKind::kSort:
      // The sort re-establishes any required order.
      out.order_required = false;
      break;
    case OpKind::kRdup:
    case OpKind::kRdupT:
      // Duplicates are eliminated above; they cannot matter below.
      out.duplicates_relevant = false;
      break;
    case OpKind::kAggregate:
    case OpKind::kAggregateT: {
      // COUNT/SUM/AVG are multiplicity-sensitive; MIN/MAX are not.
      bool sensitive = false;
      for (const AggSpec& a : node.aggregates()) {
        if (a.func == AggFunc::kCount || a.func == AggFunc::kSum ||
            a.func == AggFunc::kAvg) {
          sensitive = true;
        }
      }
      out.duplicates_relevant = sensitive;
      if (node.kind() == OpKind::kAggregateT) {
        // ℵT's result depends on its input only through the input's
        // snapshots: time periods below need not be preserved.
        out.period_preserving = false;
      }
      break;
    }
    case OpKind::kDifference:
      if (child_index == 0) {
        // Left multiplicities always affect the difference.
        out.duplicates_relevant = true;
      } else {
        // The order of the subtrahend never matters; its duplicates matter
        // only when the left argument can carry duplicates.
        out.order_required = false;
        out.duplicates_relevant = !left_duplicate_free;
      }
      break;
    case OpKind::kDifferenceT:
      if (child_index == 0) {
        out.duplicates_relevant = true;
      } else {
        out.order_required = false;
        if (left_snapshot_dup_free) {
          out.duplicates_relevant = false;
          // With a snapshot-duplicate-free left argument, \T depends on the
          // right argument only through its snapshots.
          out.period_preserving = false;
        }
      }
      break;
    case OpKind::kCoalesce:
      // coalT maps every snapshot-equivalent duplicate-free argument to the
      // same result, so periods below need not be preserved.
      if (child_snapshot_dup_free) out.period_preserving = false;
      break;
    default:
      break;
  }
  return out;
}

namespace {

// The per-node bottom-up derivation step (the static columns of Table 1).
// `cs` holds the children's already-derived information; `ni->schema` is set
// by the caller.
Status FillNodeInfo(const PlanPtr& node, const Catalog& catalog,
                    const CardinalityParams& params,
                    const std::vector<const NodeInfo*>& cs, NodeInfo* ni) {
    switch (node->kind()) {
      case OpKind::kScan: {
        const CatalogEntry* e = catalog.Find(node->rel_name());
        // DeriveSchema already failed cleanly if the relation is missing,
        // but that invariant lives in a different function — keep this from
        // ever turning a dropped relation into a null deref.
        if (e == nullptr) {
          return Status::NotFound("relation '" + node->rel_name() +
                                  "' (dropped since plan construction?)");
        }
        ni->site = e->site;
        ni->order = e->order;
        ni->duplicate_free = e->duplicate_free;
        ni->snapshot_duplicate_free = e->snapshot_duplicate_free;
        ni->coalesced = e->coalesced;
        ni->cardinality = static_cast<double>(e->data.size());
        return Status::OK();
      }
      case OpKind::kTransferS:
      case OpKind::kTransferD: {
        const NodeInfo& c = *cs[0];
        bool to_stratum = node->kind() == OpKind::kTransferS;
        if (to_stratum && c.site != Site::kDbms) {
          return Status::InvalidArgument(
              "transferS requires a DBMS-resident input");
        }
        if (!to_stratum && c.site != Site::kStratum) {
          return Status::InvalidArgument(
              "transferD requires a stratum-resident input");
        }
        ni->site = to_stratum ? Site::kStratum : Site::kDbms;
        ni->order = c.order;
        ni->duplicate_free = c.duplicate_free;
        ni->snapshot_duplicate_free = c.snapshot_duplicate_free;
        ni->coalesced = c.coalesced;
        ni->cardinality = c.cardinality;
        return Status::OK();
      }
      default:
        break;
    }

    // Non-transfer operators: all children must execute at the same site.
    Site site = cs[0]->site;
    for (size_t i = 1; i < node->arity(); ++i) {
      if (cs[i]->site != site) {
        return Status::InvalidArgument(
            std::string(OpKindName(node->kind())) +
            " has children at different sites; insert transfers");
      }
    }
    ni->site = site;

    const NodeInfo& c0 = *cs[0];
    switch (node->kind()) {
      case OpKind::kSelect: {
        ni->order = c0.order;
        ni->duplicate_free = c0.duplicate_free;
        ni->snapshot_duplicate_free = c0.snapshot_duplicate_free;
        ni->coalesced = c0.coalesced;
        ni->cardinality =
            c0.cardinality * PredicateSelectivity(node->predicate(), params);
        break;
      }
      case OpKind::kProject: {
        // Order: longest prefix of the input order whose attributes are
        // passed through unchanged (possibly renamed).
        std::vector<std::pair<std::string, std::string>> pass;
        bool permutation = node->projections().size() == c0.schema.size();
        std::set<std::string> seen;
        for (const ProjItem& item : node->projections()) {
          if (item.expr->kind() == ExprKind::kAttr) {
            pass.emplace_back(item.expr->attr_name(), item.name);
            if (!seen.insert(item.expr->attr_name()).second) {
              permutation = false;
            }
          } else {
            permutation = false;
          }
        }
        if (pass.size() != node->projections().size()) permutation = false;
        ni->order = RenameOrder(c0.order, pass);
        // π generates duplicates and destroys coalescing — unless it is a
        // pure permutation of the input attributes.
        ni->duplicate_free = permutation && c0.duplicate_free;
        ni->snapshot_duplicate_free = permutation && c0.snapshot_duplicate_free;
        ni->coalesced = permutation && c0.coalesced && ni->schema.IsTemporal();
        ni->cardinality = c0.cardinality;
        break;
      }
      case OpKind::kUnionAll: {
        const NodeInfo& c1 = *cs[1];
        ni->order = {};  // ⊎ is unordered (Table 1)
        ni->duplicate_free = false;
        ni->snapshot_duplicate_free = false;
        ni->coalesced = false;
        ni->cardinality = c0.cardinality + c1.cardinality;
        break;
      }
      case OpKind::kUnion: {
        const NodeInfo& c1 = *cs[1];
        ni->order = {};
        ni->duplicate_free = c0.duplicate_free && c1.duplicate_free;
        ni->snapshot_duplicate_free = false;
        ni->coalesced = false;
        ni->cardinality = c0.cardinality + 0.5 * c1.cardinality;
        break;
      }
      case OpKind::kUnionT: {
        const NodeInfo& c1 = *cs[1];
        ni->order = {};
        ni->duplicate_free = c0.duplicate_free && c1.duplicate_free &&
                             c0.snapshot_duplicate_free &&
                             c1.snapshot_duplicate_free;
        ni->snapshot_duplicate_free =
            c0.snapshot_duplicate_free && c1.snapshot_duplicate_free;
        ni->coalesced = false;
        ni->cardinality = c0.cardinality + c1.cardinality;
        break;
      }
      case OpKind::kProduct: {
        const NodeInfo& c1 = *cs[1];
        std::vector<std::pair<std::string, std::string>> mapping;
        for (const Attribute& a : c0.schema.attrs()) {
          mapping.emplace_back(
              a.name, ProductName(a.name, c1.schema, "1."));
        }
        ni->order = RenameOrder(c0.order, mapping);
        ni->duplicate_free = c0.duplicate_free && c1.duplicate_free;
        ni->snapshot_duplicate_free = ni->duplicate_free;
        ni->coalesced = false;
        ni->cardinality = c0.cardinality * c1.cardinality;
        break;
      }
      case OpKind::kProductT: {
        const NodeInfo& c1 = *cs[1];
        std::vector<std::pair<std::string, std::string>> mapping;
        for (const Attribute& a : c0.schema.attrs()) {
          if (a.name == kT1 || a.name == kT2) continue;
          mapping.emplace_back(
              a.name, ProductName(a.name, c1.schema, "1."));
        }
        ni->order = RenameOrder(DropTimeKeys(c0.order), mapping);
        ni->duplicate_free = c0.duplicate_free && c1.duplicate_free;
        ni->snapshot_duplicate_free =
            c0.snapshot_duplicate_free && c1.snapshot_duplicate_free;
        ni->coalesced = false;
        ni->cardinality =
            c0.cardinality * c1.cardinality * params.product_t_overlap;
        break;
      }
      case OpKind::kDifference: {
        const NodeInfo& c1 = *cs[1];
        ni->order = c0.order;
        ni->duplicate_free = c0.duplicate_free;
        ni->snapshot_duplicate_free = c0.snapshot_duplicate_free;
        ni->coalesced = c0.coalesced;
        ni->cardinality =
            std::max(c0.cardinality - c1.cardinality, 0.2 * c0.cardinality);
        break;
      }
      case OpKind::kDifferenceT: {
        ni->order = DropTimeKeys(c0.order);
        ni->duplicate_free = c0.snapshot_duplicate_free;
        ni->snapshot_duplicate_free = c0.snapshot_duplicate_free;
        ni->coalesced = false;  // \T destroys coalescing (Table 1)
        ni->cardinality = c0.cardinality;
        break;
      }
      case OpKind::kAggregate: {
        ni->order = OrderPrefixOnAttrs(c0.order, node->group_by());
        ni->duplicate_free = true;
        ni->snapshot_duplicate_free = true;
        ni->coalesced = false;
        ni->cardinality =
            std::max(1.0, c0.cardinality * params.group_shrink);
        break;
      }
      case OpKind::kAggregateT: {
        ni->order = OrderPrefixOnAttrs(c0.order, node->group_by());
        ni->duplicate_free = true;
        ni->snapshot_duplicate_free = true;
        ni->coalesced = false;  // ℵT destroys coalescing (Table 1)
        ni->cardinality = std::max(1.0, 2.0 * c0.cardinality - 1.0);
        break;
      }
      case OpKind::kRdup: {
        std::vector<std::pair<std::string, std::string>> mapping;
        for (const Attribute& a : c0.schema.attrs()) {
          if (a.name == kT1 || a.name == kT2) {
            mapping.emplace_back(a.name, "1." + a.name);
          } else {
            mapping.emplace_back(a.name, a.name);
          }
        }
        ni->order = RenameOrder(c0.order, mapping);
        ni->duplicate_free = true;
        ni->snapshot_duplicate_free = ni->schema.IsTemporal() ? false : true;
        ni->coalesced = false;
        ni->cardinality =
            c0.duplicate_free ? c0.cardinality
                              : c0.cardinality * params.rdup_shrink;
        break;
      }
      case OpKind::kRdupT: {
        ni->order = DropTimeKeys(c0.order);
        ni->duplicate_free = true;
        ni->snapshot_duplicate_free = true;
        ni->coalesced = false;  // rdupT destroys coalescing (Table 1)
        ni->cardinality = c0.snapshot_duplicate_free
                              ? c0.cardinality
                              : std::max(1.0, 2.0 * c0.cardinality - 1.0) *
                                    params.rdup_shrink;
        break;
      }
      case OpKind::kSort: {
        if (IsPrefixOf(node->sort_spec(), c0.order)) {
          ni->order = c0.order;
        } else {
          // Stable sort refines: result is ordered by the sort spec, then
          // by any previous order on ties.
          ni->order = node->sort_spec();
          for (const SortKey& k : c0.order) {
            bool dup = false;
            for (const SortKey& existing : ni->order) {
              if (existing.attr == k.attr) {
                dup = true;
                break;
              }
            }
            if (!dup) ni->order.push_back(k);
          }
        }
        ni->duplicate_free = c0.duplicate_free;
        ni->snapshot_duplicate_free = c0.snapshot_duplicate_free;
        ni->coalesced = c0.coalesced;
        ni->cardinality = c0.cardinality;
        break;
      }
      case OpKind::kCoalesce: {
        ni->order = DropTimeKeys(c0.order);
        ni->duplicate_free = c0.duplicate_free;
        ni->snapshot_duplicate_free = c0.snapshot_duplicate_free;
        ni->coalesced = true;  // coalT enforces coalescing
        ni->cardinality = c0.coalesced
                              ? c0.cardinality
                              : c0.cardinality * params.coalesce_shrink;
        break;
      }
      default:
        return Status::Error("unhandled operator in Fill");
    }

    // A conventional DBMS does not guarantee the order of operation
    // results (Section 4.5); only sort (and clustered base-table scans)
    // carries a known order at the DBMS site.
    if (ni->site == Site::kDbms && node->kind() != OpKind::kSort &&
        node->kind() != OpKind::kScan) {
      ni->order = {};
    }
    return Status::OK();
  }

}  // namespace

const std::vector<std::string>& NodeInfo::NoRelations() {
  static const std::vector<std::string> empty;
  return empty;
}

namespace {

/// The relation-dependency set of `node` from its children's sets: a scan
/// introduces its own relation; a unary operator aliases its child's vector
/// (no copy); a binary operator merges — but reuses a side's vector when the
/// other contributes nothing new, so long operator chains over the same
/// scans share one allocation.
std::shared_ptr<const std::vector<std::string>> DeriveRelationDeps(
    const PlanNode& node, const std::vector<const NodeInfo*>& cs) {
  if (node.kind() == OpKind::kScan) {
    return std::make_shared<const std::vector<std::string>>(
        std::vector<std::string>{node.rel_name()});
  }
  if (cs.empty()) return nullptr;
  if (cs.size() == 1) return cs[0]->relations;
  std::shared_ptr<const std::vector<std::string>> merged = cs[0]->relations;
  for (size_t i = 1; i < cs.size(); ++i) {
    const std::shared_ptr<const std::vector<std::string>>& other =
        cs[i]->relations;
    if (other == nullptr || other->empty() || other == merged) continue;
    if (merged == nullptr || merged->empty()) {
      merged = other;
      continue;
    }
    if (std::includes(merged->begin(), merged->end(), other->begin(),
                      other->end())) {
      continue;
    }
    auto out = std::make_shared<std::vector<std::string>>();
    out->reserve(merged->size() + other->size());
    std::set_union(merged->begin(), merged->end(), other->begin(),
                   other->end(), std::back_inserter(*out));
    merged = std::move(out);
  }
  return merged;
}

}  // namespace

Status DerivationCache::Derive(const PlanPtr& plan, const Catalog& catalog,
                               const CardinalityParams& params) {
  if (Find(plan.get()) != nullptr) return Status::OK();
  std::vector<const NodeInfo*> cs;
  std::vector<Schema> child_schemas;
  cs.reserve(plan->arity());
  child_schemas.reserve(plan->arity());
  for (const PlanPtr& c : plan->children()) {
    TQP_RETURN_IF_ERROR(Derive(c, catalog, params));
    // Entry references are stable across rehashes (node-based map) and
    // across concurrent inserts (entries are never erased).
    const NodeInfo* info = Find(c.get());
    cs.push_back(info);
    child_schemas.push_back(info->schema);
  }
  TQP_ASSIGN_OR_RETURN(schema, DeriveSchema(*plan, child_schemas, catalog));
  NodeInfo ni;
  ni.schema = schema;
  TQP_RETURN_IF_ERROR(FillNodeInfo(plan, catalog, params, cs, &ni));
  ni.relations = DeriveRelationDeps(*plan, cs);
  // Probe + insert atomically under the shard's stripe lock. A racing
  // derivation of the same node computed identical info (it is a pure
  // function of the subtree, catalog, and params); the first insert wins.
  uint64_t h = HashOf(plan.get());
  MaybeLockGuard lock(LockFor(h));
  Shard& shard = shards_[StripedMutex::IndexOf(h)];
  if (shard.entries.emplace(plan.get(), Entry{plan, std::move(ni)}).second) {
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Result<AnnotatedPlan> AnnotatedPlan::Make(PlanPtr plan, const Catalog* catalog,
                                          QueryContract contract,
                                          CardinalityParams params,
                                          DerivationCache* cache) {
  TQP_CHECK(catalog != nullptr);
  AnnotatedPlan out;
  out.plan_ = plan;
  out.catalog_ = catalog;
  out.contract_ = contract;
  out.info_.reserve(plan->subtree_size());

  // ---- Bottom-up: schema, site, order, guarantees, cardinality. ----
  // Purely structural, so it runs through a derivation cache (the caller's,
  // so shared subtrees amortize across plans, or a local one) and is then
  // materialized into this plan's per-node map.
  DerivationCache local_cache;
  DerivationCache* c = cache != nullptr ? cache : &local_cache;
  TQP_RETURN_IF_ERROR(c->Derive(plan, *catalog, params));

  struct Materialize {
    const DerivationCache* cache;
    std::unordered_map<const PlanNode*, NodeInfo>* info;
    void Visit(const PlanPtr& node) {
      if (info->count(node.get()) > 0) return;  // shared subtree
      for (const PlanPtr& ch : node->children()) Visit(ch);
      info->emplace(node.get(), *cache->Find(node.get()));
    }
  };
  Materialize materialize{c, &out.info_};
  materialize.Visit(plan);

  // ---- Top-down: the Table 2 properties. ----
  // Each parent→child edge contributes a property triple (DeriveChildProps)
  // derived from the parent's resolved properties; a node's properties are
  // the disjunction of its incoming edges' contributions. On a proper tree
  // (one edge per node) this is exactly the single-parent assignment; on a
  // hash-consed DAG the disjunction is the conservative combination (a true
  // property only restricts rule applicability, never enables an unsound
  // rewrite).
  {
    NodeInfo& root = out.info_.at(plan.get());
    root.order_required = contract.result_type == ResultType::kList;
    root.duplicates_relevant = contract.result_type != ResultType::kSet;
    root.period_preserving = true;  // ≡SQL is never a snapshot equivalence
  }

  // Fetches the bottom-up bits DeriveChildProps consults for this edge.
  auto edge = [&out](const PlanNode* node, size_t i, const NodeProps& parent) {
    bool ldf = false, lsdf = false, csdf = false;
    switch (node->kind()) {
      case OpKind::kDifference:
      case OpKind::kDifferenceT: {
        const NodeInfo& left = out.info_.at(node->child(0).get());
        ldf = left.duplicate_free;
        lsdf = left.snapshot_duplicate_free;
        break;
      }
      case OpKind::kCoalesce:
        csdf = out.info_.at(node->child(i).get()).snapshot_duplicate_free;
        break;
      default:
        break;
    }
    return DeriveChildProps(*node, i, parent, ldf, lsdf, csdf);
  };

  if (out.info_.size() == plan->subtree_size()) {
    // Proper tree (no node occurs twice): single-parent assignment, walked
    // recursively without any topological bookkeeping. This is the common
    // case — rewrites only create shared subtrees when one logical
    // subexpression occurs twice in a plan.
    struct TreeWalker {
      const decltype(edge)& edge_fn;
      std::unordered_map<const PlanNode*, NodeInfo>* info;
      void Visit(const PlanPtr& node) {
        const NodeInfo& ni = info->at(node.get());
        NodeProps parent{ni.order_required, ni.duplicates_relevant,
                         ni.period_preserving};
        for (size_t i = 0; i < node->arity(); ++i) {
          NodeProps cp = edge_fn(node.get(), i, parent);
          NodeInfo& ci = info->at(node->child(i).get());
          ci.order_required = cp.order_required;
          ci.duplicates_relevant = cp.duplicates_relevant;
          ci.period_preserving = cp.period_preserving;
          Visit(node->child(i));
        }
      }
    };
    TreeWalker tw{edge, &out.info_};
    tw.Visit(plan);
    return out;
  }

  // General DAG: process unique nodes in topological order (reverse DFS
  // post-order), so every parent is fully resolved before its edges fire,
  // OR-ing each edge's contribution into the child.
  std::vector<const PlanNode*> topo;
  {
    std::unordered_set<const PlanNode*> visited;
    struct TopoWalker {
      std::unordered_set<const PlanNode*>* visited;
      std::vector<const PlanNode*>* post;
      void Visit(const PlanPtr& node) {
        if (!visited->insert(node.get()).second) return;
        for (const PlanPtr& ch : node->children()) Visit(ch);
        post->push_back(node.get());
      }
    };
    TopoWalker tw{&visited, &topo};
    tw.Visit(plan);
    std::reverse(topo.begin(), topo.end());
  }

  for (const PlanNode* node : topo) {
    if (node == plan.get()) continue;
    NodeInfo& ni = out.info_.at(node);
    ni.order_required = false;
    ni.duplicates_relevant = false;
    ni.period_preserving = false;
  }

  for (const PlanNode* node : topo) {
    // Safe reference: edges only mutate the three property bools of child
    // entries, and a node is never its own descendant.
    const NodeInfo& ni = out.info_.at(node);
    NodeProps parent{ni.order_required, ni.duplicates_relevant,
                     ni.period_preserving};
    for (size_t i = 0; i < node->arity(); ++i) {
      NodeProps cp = edge(node, i, parent);
      NodeInfo& ci = out.info_.at(node->child(i).get());
      ci.order_required |= cp.order_required;
      ci.duplicates_relevant |= cp.duplicates_relevant;
      ci.period_preserving |= cp.period_preserving;
    }
  }
  return out;
}

const NodeInfo& AnnotatedPlan::info(const PlanNode* node) const {
  auto it = info_.find(node);
  TQP_CHECK(it != info_.end());
  return it->second;
}

}  // namespace tqp
