// Static plan analysis: schemas, order, guarantees, sites, cardinalities
// (bottom-up) and the Table 2 applicability properties (top-down).
//
// The bottom-up pass realizes the static columns of Table 1: the order of
// each operation's result (the Order(r) function), its cardinality estimate,
// and whether it eliminates/retains/generates duplicates and
// enforces/retains/destroys coalescing — expressed here as sufficient
// *guarantees* (duplicate_free, snapshot_duplicate_free, coalesced) that rule
// preconditions consult.
//
// The top-down pass assigns the three Boolean properties of Table 2
// (OrderRequired, DuplicatesRelevant, PeriodPreserving) from the query's
// ≡SQL contract (Definition 5.1), which the enumeration algorithm (Figure 5)
// uses to gate transformation rules of each equivalence type.
#ifndef TQP_ALGEBRA_DERIVATION_H_
#define TQP_ALGEBRA_DERIVATION_H_

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/plan.h"
#include "core/catalog.h"
#include "core/sync.h"

namespace tqp {

/// The type of result a user-level query specifies (Definition 5.1):
/// ORDER BY present => list; DISTINCT without ORDER BY => set; neither =>
/// multiset.
enum class ResultType { kList, kMultiset, kSet };

const char* ResultTypeName(ResultType t);

/// The ≡SQL contract of a query: result type plus the ORDER BY spec (only
/// meaningful for kList).
struct QueryContract {
  ResultType result_type = ResultType::kMultiset;
  SortSpec order_by;

  static QueryContract List(SortSpec order) {
    return QueryContract{ResultType::kList, std::move(order)};
  }
  static QueryContract Multiset() { return QueryContract{}; }
  static QueryContract Set() {
    return QueryContract{ResultType::kSet, {}};
  }
};

/// Tunable estimation parameters for the cardinality model.
struct CardinalityParams {
  double default_selectivity = 0.33;
  double equality_selectivity = 0.1;
  double product_t_overlap = 0.3;    // fraction of pairs with overlapping periods
  double rdup_shrink = 0.5;          // |rdup(r)| / |r|
  double coalesce_shrink = 0.6;      // |coalT(r)| / |r|
  double group_shrink = 0.2;         // groups per input tuple
};

/// Everything the optimizer statically knows about one operator's output.
struct NodeInfo {
  Schema schema;
  /// Statically known sort order of the output list (Table 1, Order column).
  SortSpec order;
  Site site = Site::kDbms;
  /// Sufficient guarantees (may be false even when the data happens to
  /// satisfy the property).
  bool duplicate_free = false;
  bool snapshot_duplicate_free = false;
  bool coalesced = false;
  double cardinality = 0.0;
  /// The relation-dependency set of this subtree: the sorted, deduplicated
  /// names of every base relation a kScan below (or at) this node reads.
  /// Shared between nodes (a unary operator aliases its child's vector), so
  /// carrying it costs one pointer per node. Never null after Derive; use
  /// relation_deps() for a null-safe view. The subplan result cache and the
  /// Engine's dependency-keyed plan-cache invalidation compare per-relation
  /// catalog versions over exactly this set.
  std::shared_ptr<const std::vector<std::string>> relations;

  static const std::vector<std::string>& NoRelations();
  const std::vector<std::string>& relation_deps() const {
    return relations == nullptr ? NoRelations() : *relations;
  }

  // Table 2 applicability properties (top-down).
  bool order_required = true;
  bool duplicates_relevant = true;
  bool period_preserving = true;

  bool is_temporal() const { return schema.IsTemporal(); }

  /// "[T - T]"-style rendering used by Figure 6 output.
  std::string PropertiesBrackets() const;
};

/// A cross-plan cache of bottom-up node information.
///
/// The bottom-up half of NodeInfo (schema, order, site, guarantees,
/// cardinality) is a pure function of the subtree's structure, the catalog,
/// and the cardinality parameters — so once hash-consed plans share subtree
/// objects, the derivation of a shared subtree can be reused by every plan
/// containing it. The memo enumerator passes one cache across the whole
/// search; only nodes never seen before (the rebuilt spine of each rewrite)
/// pay for schema derivation.
///
/// Entries pin their node (PlanPtr) so a cached pointer can never be
/// recycled by the allocator and misattributed. A cache must only be reused
/// across calls with the same catalog and cardinality parameters.
///
/// Concurrency: storage is sharded by node pointer behind striped locks. By
/// default no locks are taken (the single-threaded path is lock-free);
/// EnableConcurrentAccess() makes concurrent Find/Derive safe — entry values
/// are pure functions of the node, so racing derivations of the same node
/// compute identical info and the first insert wins. The parallel
/// enumeration driver and tqp::Engine's shared session cache rely on this.
class DerivationCache {
 public:
  /// Derives (memoized) the bottom-up information of every node in `plan`,
  /// validating it along the way: unknown relations, schema mismatches, site
  /// inconsistencies and temporal misuse all fail here. A node present in
  /// the cache is guaranteed to head a fully valid subtree, so subtrees
  /// shared with already-derived plans cost nothing.
  Status Derive(const PlanPtr& plan, const Catalog& catalog,
                const CardinalityParams& params);

  /// The cached bottom-up information of `node`, or nullptr. The top-down
  /// (Table 2) fields of the returned NodeInfo are meaningless. The pointer
  /// stays valid for the cache's lifetime (entries are never erased and the
  /// maps are node-based), including across concurrent inserts.
  const NodeInfo* Find(const PlanNode* node) const {
    uint64_t h = HashOf(node);
    MaybeLockGuard lock(LockFor(h));
    const Shard& shard = shards_[StripedMutex::IndexOf(h)];
    auto it = shard.entries.find(node);
    return it == shard.entries.end() ? nullptr : &it->second.info;
  }

  size_t size() const { return count_.load(std::memory_order_relaxed); }

  /// Switches the cache to concurrent mode: every probe/insert takes the
  /// striped lock of the shard it touches. One-way (a monotonic relaxed
  /// atomic, so concurrent re-enables are benign), and must be called
  /// before the cache is first shared between threads.
  void EnableConcurrentAccess() {
    concurrent_.store(true, std::memory_order_relaxed);
  }

 private:
  struct Entry {
    PlanPtr node;  // pin
    NodeInfo info;  // top-down fields are meaningless here
  };
  struct Shard {
    std::unordered_map<const PlanNode*, Entry> entries;
  };

  static uint64_t HashOf(const PlanNode* node) {
    return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(node));
  }
  std::mutex* LockFor(uint64_t h) const {
    return concurrent_.load(std::memory_order_relaxed) ? &mu_.For(h)
                                                       : nullptr;
  }

  Shard shards_[StripedMutex::kStripes];
  mutable StripedMutex mu_;
  std::atomic<bool> concurrent_{false};
  std::atomic<size_t> count_{0};
};

/// The Table 2 applicability properties of one node occurrence, as computed
/// top-down from the query contract (Definition 5.1).
struct NodeProps {
  bool order_required = true;
  bool duplicates_relevant = true;
  bool period_preserving = true;
};

/// The per-edge Table 2 derivation step: the properties child `child_index`
/// of `node` receives from a parent occurrence with properties `parent`.
/// The three boolean arguments are the bottom-up guarantees the step
/// consults: `left_*` describe child(0) (difference rules), and
/// `child_snapshot_dup_free` describes the child itself (coalT). Shared by
/// AnnotatedPlan::Make and the enumerator's lightweight property pass so the
/// Figure 5 gating has exactly one definition.
NodeProps DeriveChildProps(const PlanNode& node, size_t child_index,
                           const NodeProps& parent, bool left_duplicate_free,
                           bool left_snapshot_dup_free,
                           bool child_snapshot_dup_free);

/// An annotated plan: the operator graph plus per-node derived information.
/// Annotations are keyed by node identity. Plans may share subtrees
/// (hash-consed DAGs): bottom-up information is derived once per distinct
/// node, and the top-down Table 2 properties of a shared node are the
/// disjunction over its occurrences — conservative for rule gating, since a
/// true property only ever restricts the admissible equivalence types.
class AnnotatedPlan {
 public:
  /// Runs both analysis passes; fails on malformed plans (unknown relations,
  /// schema mismatches, site inconsistencies, temporal ops on snapshot
  /// inputs, ...). `cache`, when given, is consulted and filled for the
  /// bottom-up pass.
  static Result<AnnotatedPlan> Make(PlanPtr plan, const Catalog* catalog,
                                    QueryContract contract,
                                    CardinalityParams params = {},
                                    DerivationCache* cache = nullptr);

  const PlanPtr& plan() const { return plan_; }
  const QueryContract& contract() const { return contract_; }
  const Catalog& catalog() const { return *catalog_; }

  const NodeInfo& info(const PlanNode* node) const;
  const NodeInfo& root_info() const { return info(plan_.get()); }

 private:
  AnnotatedPlan() = default;

  PlanPtr plan_;
  const Catalog* catalog_ = nullptr;
  QueryContract contract_;
  std::unordered_map<const PlanNode*, NodeInfo> info_;
};

/// The read-only annotation view handed to transformation rules and the
/// Figure 5 gating. Two backings:
///
///  * a fully materialized AnnotatedPlan (implicit conversion), as used by
///    tests, the optimizer's cost loop and ad-hoc rule application;
///  * the enumerator's shared DerivationCache plus a small per-plan table of
///    Table 2 properties — no per-plan NodeInfo copies at all, which is what
///    makes memo expansion cheap.
///
/// info() exposes bottom-up facts only; its top-down fields are meaningless
/// under the cache backing. Property gating must go through props().
class PlanContext {
 public:
  /// Table 2 properties per node *occurrence*, in the plan's pre-order.
  /// Hash-consing can make one node object occur at several locations of a
  /// plan with different properties at each; keying by occurrence keeps the
  /// gating exact (identical to the legacy per-object behavior).
  using PropsTable = std::vector<std::pair<const PlanNode*, NodeProps>>;

  // NOLINTNEXTLINE(runtime/explicit) — intentional implicit view conversion.
  PlanContext(const AnnotatedPlan& ann) : ann_(&ann) {}
  PlanContext(const DerivationCache* cache, const PropsTable* props,
              const QueryContract* contract)
      : cache_(cache), props_(props), contract_(contract) {}

  /// Bottom-up information of `node` (schema, order, site, guarantees,
  /// cardinality). Do not read the Table 2 fields through this — use
  /// props().
  const NodeInfo& info(const PlanNode* node) const {
    if (ann_ != nullptr) return ann_->info(node);
    const NodeInfo* info = cache_->Find(node);
    TQP_CHECK(info != nullptr);
    return *info;
  }

  /// Restricts props() to the occurrences in `[begin, end)` of the props
  /// table — the enumerator sets this to the pre-order span of the subtree
  /// a rule matched, so a shared node's properties are read at the matched
  /// occurrence(s) only. No-op for the AnnotatedPlan backing.
  void SetOccurrenceWindow(size_t begin, size_t end) {
    window_begin_ = begin;
    window_end_ = end;
  }

  /// The Table 2 properties of `node` in this plan. Under the table backing,
  /// the OR over `node`'s occurrences inside the active window — for a rule
  /// location list this matches checking each matched occurrence separately,
  /// since RuleAdmitted requires every listed operation to qualify.
  NodeProps props(const PlanNode* node) const {
    if (ann_ != nullptr) {
      const NodeInfo& info = ann_->info(node);
      return NodeProps{info.order_required, info.duplicates_relevant,
                       info.period_preserving};
    }
    NodeProps out{false, false, false};
    bool found = false;
    size_t end = window_end_ < props_->size() ? window_end_ : props_->size();
    for (size_t i = window_begin_; i < end; ++i) {
      const auto& [n, p] = (*props_)[i];
      if (n != node) continue;
      out.order_required |= p.order_required;
      out.duplicates_relevant |= p.duplicates_relevant;
      out.period_preserving |= p.period_preserving;
      found = true;
    }
    TQP_CHECK(found && "node has no properties in the active window");
    return out;
  }

  const QueryContract& contract() const {
    return ann_ != nullptr ? ann_->contract() : *contract_;
  }

 private:
  const AnnotatedPlan* ann_ = nullptr;
  const DerivationCache* cache_ = nullptr;
  const PropsTable* props_ = nullptr;
  const QueryContract* contract_ = nullptr;
  size_t window_begin_ = 0;
  size_t window_end_ = static_cast<size_t>(-1);
};

/// Derives the result type of a scalar expression against an input schema.
Result<ValueType> DeriveExprType(const ExprPtr& expr, const Schema& schema);

/// Derives the output schema of a single operator given child schemas.
/// Exposed for the executor, which must agree with the planner exactly.
Result<Schema> DeriveSchema(const PlanNode& node,
                            const std::vector<Schema>& child_schemas,
                            const Catalog& catalog);

}  // namespace tqp

#endif  // TQP_ALGEBRA_DERIVATION_H_
