// Static plan analysis: schemas, order, guarantees, sites, cardinalities
// (bottom-up) and the Table 2 applicability properties (top-down).
//
// The bottom-up pass realizes the static columns of Table 1: the order of
// each operation's result (the Order(r) function), its cardinality estimate,
// and whether it eliminates/retains/generates duplicates and
// enforces/retains/destroys coalescing — expressed here as sufficient
// *guarantees* (duplicate_free, snapshot_duplicate_free, coalesced) that rule
// preconditions consult.
//
// The top-down pass assigns the three Boolean properties of Table 2
// (OrderRequired, DuplicatesRelevant, PeriodPreserving) from the query's
// ≡SQL contract (Definition 5.1), which the enumeration algorithm (Figure 5)
// uses to gate transformation rules of each equivalence type.
#ifndef TQP_ALGEBRA_DERIVATION_H_
#define TQP_ALGEBRA_DERIVATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/plan.h"
#include "core/catalog.h"

namespace tqp {

/// The type of result a user-level query specifies (Definition 5.1):
/// ORDER BY present => list; DISTINCT without ORDER BY => set; neither =>
/// multiset.
enum class ResultType { kList, kMultiset, kSet };

const char* ResultTypeName(ResultType t);

/// The ≡SQL contract of a query: result type plus the ORDER BY spec (only
/// meaningful for kList).
struct QueryContract {
  ResultType result_type = ResultType::kMultiset;
  SortSpec order_by;

  static QueryContract List(SortSpec order) {
    return QueryContract{ResultType::kList, std::move(order)};
  }
  static QueryContract Multiset() { return QueryContract{}; }
  static QueryContract Set() {
    return QueryContract{ResultType::kSet, {}};
  }
};

/// Tunable estimation parameters for the cardinality model.
struct CardinalityParams {
  double default_selectivity = 0.33;
  double equality_selectivity = 0.1;
  double product_t_overlap = 0.3;    // fraction of pairs with overlapping periods
  double rdup_shrink = 0.5;          // |rdup(r)| / |r|
  double coalesce_shrink = 0.6;      // |coalT(r)| / |r|
  double group_shrink = 0.2;         // groups per input tuple
};

/// Everything the optimizer statically knows about one operator's output.
struct NodeInfo {
  Schema schema;
  /// Statically known sort order of the output list (Table 1, Order column).
  SortSpec order;
  Site site = Site::kDbms;
  /// Sufficient guarantees (may be false even when the data happens to
  /// satisfy the property).
  bool duplicate_free = false;
  bool snapshot_duplicate_free = false;
  bool coalesced = false;
  double cardinality = 0.0;

  // Table 2 applicability properties (top-down).
  bool order_required = true;
  bool duplicates_relevant = true;
  bool period_preserving = true;

  bool is_temporal() const { return schema.IsTemporal(); }

  /// "[T - T]"-style rendering used by Figure 6 output.
  std::string PropertiesBrackets() const;
};

/// An annotated plan: the tree plus per-node derived information.
/// Annotations are keyed by node identity; a plan must be a proper tree
/// (no shared subtrees), which rewrite rules maintain.
class AnnotatedPlan {
 public:
  /// Runs both analysis passes; fails on malformed plans (unknown relations,
  /// schema mismatches, site inconsistencies, temporal ops on snapshot
  /// inputs, ...).
  static Result<AnnotatedPlan> Make(PlanPtr plan, const Catalog* catalog,
                                    QueryContract contract,
                                    CardinalityParams params = {});

  const PlanPtr& plan() const { return plan_; }
  const QueryContract& contract() const { return contract_; }
  const Catalog& catalog() const { return *catalog_; }

  const NodeInfo& info(const PlanNode* node) const;
  const NodeInfo& root_info() const { return info(plan_.get()); }

 private:
  AnnotatedPlan() = default;

  PlanPtr plan_;
  const Catalog* catalog_ = nullptr;
  QueryContract contract_;
  std::unordered_map<const PlanNode*, NodeInfo> info_;
};

/// Derives the result type of a scalar expression against an input schema.
Result<ValueType> DeriveExprType(const ExprPtr& expr, const Schema& schema);

/// Derives the output schema of a single operator given child schemas.
/// Exposed for the executor, which must agree with the planner exactly.
Result<Schema> DeriveSchema(const PlanNode& node,
                            const std::vector<Schema>& child_schemas,
                            const Catalog& catalog);

}  // namespace tqp

#endif  // TQP_ALGEBRA_DERIVATION_H_
