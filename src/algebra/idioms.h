// Derived operations ("idioms", Section 2.4).
//
// "Combinations of operations, termed idioms, may be included for
// efficiency, but should be identified as idioms. ... The addition of
// idioms, e.g., join (Cartesian product followed by selection and
// projection), would not introduce any new issues in the framework.
// However, idioms should be included in an implementation of the algebra."
//
// Idioms here are *plan constructors*: they expand into the fundamental
// operations, so every transformation rule, property, and equivalence result
// applies unchanged. The optimizer is free to rearrange the expansion.
#ifndef TQP_ALGEBRA_IDIOMS_H_
#define TQP_ALGEBRA_IDIOMS_H_

#include <string>

#include "algebra/derivation.h"
#include "algebra/plan.h"

namespace tqp {

/// θ-join: σ_pred(l × r).
PlanPtr Join(PlanPtr left, PlanPtr right, ExprPtr predicate);

/// Temporal θ-join: σ_pred(l ×T r) — pairs overlap in time and satisfy the
/// predicate; the result carries the overlap as T1/T2.
PlanPtr JoinT(PlanPtr left, PlanPtr right, ExprPtr predicate);

/// Equi-join on same-named attributes: builds the predicate
/// `l.a = r.a` (with product renaming applied) for each attribute in
/// `attrs`, requires the catalog to resolve the renamed names.
/// Fails if an attribute is missing on either side.
Result<PlanPtr> NaturalishJoin(PlanPtr left, PlanPtr right,
                               const std::vector<std::string>& attrs,
                               const Catalog& catalog, bool temporal);

/// SQL UNION (duplicate-eliminating): rdup(l ⊎ r); temporal counterpart
/// rdupT(l ⊎ r). The paper notes ∪/∪T themselves are idioms over ⊎ and \/\T.
PlanPtr SqlUnion(PlanPtr left, PlanPtr right, bool temporal);

/// SQL INTERSECT (set semantics over duplicate-free views):
/// rdup(l) \ (rdup(l) \ r); temporal counterpart uses rdupT/\T.
PlanPtr SqlIntersect(PlanPtr left, PlanPtr right, bool temporal);

/// Timeslice: the snapshot of a temporal relation at time t, kept as a
/// temporal algebra expression — σ_{T1 <= t < T2} followed by a projection
/// dropping the time attributes. Requires the input schema.
Result<PlanPtr> Timeslice(PlanPtr input, TimePoint t, const Catalog& catalog);

/// The normal-form idiom: coalT(rdupT(x)) — the unique coalesced,
/// snapshot-duplicate-free representation of x's snapshot content
/// (order-insensitive as a unit; Section 6).
PlanPtr Normalize(PlanPtr input);

}  // namespace tqp

#endif  // TQP_ALGEBRA_IDIOMS_H_
