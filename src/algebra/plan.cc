#include "algebra/plan.h"

#include <algorithm>

namespace tqp {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kScan:
      return "scan";
    case OpKind::kSelect:
      return "select";
    case OpKind::kProject:
      return "project";
    case OpKind::kUnionAll:
      return "union-all";
    case OpKind::kProduct:
      return "product";
    case OpKind::kDifference:
      return "difference";
    case OpKind::kAggregate:
      return "aggregate";
    case OpKind::kRdup:
      return "rdup";
    case OpKind::kProductT:
      return "productT";
    case OpKind::kDifferenceT:
      return "differenceT";
    case OpKind::kAggregateT:
      return "aggregateT";
    case OpKind::kRdupT:
      return "rdupT";
    case OpKind::kUnion:
      return "union";
    case OpKind::kUnionT:
      return "unionT";
    case OpKind::kSort:
      return "sort";
    case OpKind::kCoalesce:
      return "coalT";
    case OpKind::kTransferS:
      return "transferS";
    case OpKind::kTransferD:
      return "transferD";
  }
  return "?";
}

bool IsTemporalOp(OpKind k) {
  switch (k) {
    case OpKind::kProductT:
    case OpKind::kDifferenceT:
    case OpKind::kAggregateT:
    case OpKind::kRdupT:
    case OpKind::kUnionT:
    case OpKind::kCoalesce:
      return true;
    default:
      return false;
  }
}

bool IsOrderSensitiveOp(OpKind k) {
  switch (k) {
    case OpKind::kRdupT:
    case OpKind::kCoalesce:
    case OpKind::kDifferenceT:
    case OpKind::kUnionT:
      return true;
    default:
      return false;
  }
}

std::string PlanNode::Describe() const {
  std::string out = OpKindName(kind_);
  switch (kind_) {
    case OpKind::kScan:
      out += " " + rel_name_;
      break;
    case OpKind::kSelect:
      out += " " + predicate_->ToString();
      break;
    case OpKind::kProject: {
      out += " [";
      for (size_t i = 0; i < projections_.size(); ++i) {
        if (i > 0) out += ", ";
        std::string e = projections_[i].expr->ToString();
        out += e;
        if (projections_[i].name != e) out += " AS " + projections_[i].name;
      }
      out += "]";
      break;
    }
    case OpKind::kAggregate:
    case OpKind::kAggregateT: {
      out += " [";
      for (size_t i = 0; i < group_by_.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_by_[i];
      }
      out += ";";
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::string(AggFuncName(aggregates_[i].func)) + "(" +
               aggregates_[i].attr + ") AS " + aggregates_[i].out_name;
      }
      out += "]";
      break;
    }
    case OpKind::kSort:
      out += " [" + SortSpecToString(sort_spec_) + "]";
      break;
    default:
      break;
  }
  return out;
}

// Builders assign private fields directly; PlanNode declares them privately,
// so each builder constructs through a local subclass with setter access.
struct PlanNodeBuilder : PlanNode {
  static std::shared_ptr<PlanNodeBuilder> Make() {
    return std::shared_ptr<PlanNodeBuilder>(new PlanNodeBuilder());
  }
  void set_kind(OpKind k) { kind_ = k; }
  void set_children(std::vector<PlanPtr> c) { children_ = std::move(c); }
  void set_rel_name(std::string n) { rel_name_ = std::move(n); }
  void set_predicate(ExprPtr p) { predicate_ = std::move(p); }
  void set_projections(std::vector<ProjItem> p) { projections_ = std::move(p); }
  void set_group_by(std::vector<std::string> g) { group_by_ = std::move(g); }
  void set_aggregates(std::vector<AggSpec> a) { aggregates_ = std::move(a); }
  void set_sort_spec(SortSpec s) { sort_spec_ = std::move(s); }

 private:
  PlanNodeBuilder() : PlanNode() {}
};

PlanPtr PlanNode::Scan(std::string rel_name) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kScan);
  n->set_rel_name(std::move(rel_name));
  return n;
}

PlanPtr PlanNode::Select(PlanPtr input, ExprPtr predicate) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kSelect);
  n->set_children({std::move(input)});
  n->set_predicate(std::move(predicate));
  return n;
}

PlanPtr PlanNode::Project(PlanPtr input, std::vector<ProjItem> items) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kProject);
  n->set_children({std::move(input)});
  n->set_projections(std::move(items));
  return n;
}

PlanPtr PlanNode::UnionAll(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kUnionAll);
  n->set_children({std::move(left), std::move(right)});
  return n;
}

PlanPtr PlanNode::Product(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kProduct);
  n->set_children({std::move(left), std::move(right)});
  return n;
}

PlanPtr PlanNode::Difference(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kDifference);
  n->set_children({std::move(left), std::move(right)});
  return n;
}

PlanPtr PlanNode::Aggregate(PlanPtr input, std::vector<std::string> group_by,
                            std::vector<AggSpec> aggs) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kAggregate);
  n->set_children({std::move(input)});
  n->set_group_by(std::move(group_by));
  n->set_aggregates(std::move(aggs));
  return n;
}

PlanPtr PlanNode::Rdup(PlanPtr input) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kRdup);
  n->set_children({std::move(input)});
  return n;
}

PlanPtr PlanNode::ProductT(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kProductT);
  n->set_children({std::move(left), std::move(right)});
  return n;
}

PlanPtr PlanNode::DifferenceT(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kDifferenceT);
  n->set_children({std::move(left), std::move(right)});
  return n;
}

PlanPtr PlanNode::AggregateT(PlanPtr input, std::vector<std::string> group_by,
                             std::vector<AggSpec> aggs) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kAggregateT);
  n->set_children({std::move(input)});
  n->set_group_by(std::move(group_by));
  n->set_aggregates(std::move(aggs));
  return n;
}

PlanPtr PlanNode::RdupT(PlanPtr input) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kRdupT);
  n->set_children({std::move(input)});
  return n;
}

PlanPtr PlanNode::Union(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kUnion);
  n->set_children({std::move(left), std::move(right)});
  return n;
}

PlanPtr PlanNode::UnionT(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kUnionT);
  n->set_children({std::move(left), std::move(right)});
  return n;
}

PlanPtr PlanNode::Sort(PlanPtr input, SortSpec spec) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kSort);
  n->set_children({std::move(input)});
  n->set_sort_spec(std::move(spec));
  return n;
}

PlanPtr PlanNode::Coalesce(PlanPtr input) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kCoalesce);
  n->set_children({std::move(input)});
  return n;
}

PlanPtr PlanNode::TransferS(PlanPtr input) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kTransferS);
  n->set_children({std::move(input)});
  return n;
}

PlanPtr PlanNode::TransferD(PlanPtr input) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kTransferD);
  n->set_children({std::move(input)});
  return n;
}

PlanPtr PlanNode::WithChildren(const PlanPtr& node,
                               std::vector<PlanPtr> children) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(node->kind_);
  n->set_children(std::move(children));
  n->set_rel_name(node->rel_name_);
  if (node->predicate_) n->set_predicate(node->predicate_);
  n->set_projections(node->projections_);
  n->set_group_by(node->group_by_);
  n->set_aggregates(node->aggregates_);
  n->set_sort_spec(node->sort_spec_);
  return n;
}

std::string CanonicalString(const PlanPtr& plan) {
  std::string out = plan->Describe();
  if (!plan->children().empty()) {
    out += "(";
    for (size_t i = 0; i < plan->children().size(); ++i) {
      if (i > 0) out += ",";
      out += CanonicalString(plan->child(i));
    }
    out += ")";
  }
  return out;
}

size_t PlanSize(const PlanPtr& plan) {
  size_t n = 1;
  for (const PlanPtr& c : plan->children()) n += PlanSize(c);
  return n;
}

void CollectNodes(const PlanPtr& plan, std::vector<PlanPtr>* out) {
  out->push_back(plan);
  for (const PlanPtr& c : plan->children()) CollectNodes(c, out);
}

PlanPtr ClonePlan(const PlanPtr& plan) {
  std::vector<PlanPtr> children;
  children.reserve(plan->children().size());
  for (const PlanPtr& c : plan->children()) children.push_back(ClonePlan(c));
  return PlanNode::WithChildren(plan, std::move(children));
}

PlanPtr ReplaceNode(const PlanPtr& root, const PlanNode* target,
                    PlanPtr replacement) {
  if (root.get() == target) return replacement;
  bool changed = false;
  std::vector<PlanPtr> new_children;
  new_children.reserve(root->children().size());
  for (const PlanPtr& c : root->children()) {
    PlanPtr nc = ReplaceNode(c, target, replacement);
    changed |= (nc != c);
    new_children.push_back(std::move(nc));
  }
  if (!changed) return root;
  return PlanNode::WithChildren(root, std::move(new_children));
}

}  // namespace tqp
