#include "algebra/plan.h"

#include <algorithm>

#include "core/hash.h"

namespace tqp {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kScan:
      return "scan";
    case OpKind::kSelect:
      return "select";
    case OpKind::kProject:
      return "project";
    case OpKind::kUnionAll:
      return "union-all";
    case OpKind::kProduct:
      return "product";
    case OpKind::kDifference:
      return "difference";
    case OpKind::kAggregate:
      return "aggregate";
    case OpKind::kRdup:
      return "rdup";
    case OpKind::kProductT:
      return "productT";
    case OpKind::kDifferenceT:
      return "differenceT";
    case OpKind::kAggregateT:
      return "aggregateT";
    case OpKind::kRdupT:
      return "rdupT";
    case OpKind::kUnion:
      return "union";
    case OpKind::kUnionT:
      return "unionT";
    case OpKind::kSort:
      return "sort";
    case OpKind::kCoalesce:
      return "coalT";
    case OpKind::kTransferS:
      return "transferS";
    case OpKind::kTransferD:
      return "transferD";
  }
  return "?";
}

bool IsTemporalOp(OpKind k) {
  switch (k) {
    case OpKind::kProductT:
    case OpKind::kDifferenceT:
    case OpKind::kAggregateT:
    case OpKind::kRdupT:
    case OpKind::kUnionT:
    case OpKind::kCoalesce:
      return true;
    default:
      return false;
  }
}

bool IsOrderSensitiveOp(OpKind k) {
  switch (k) {
    case OpKind::kRdupT:
    case OpKind::kCoalesce:
    case OpKind::kDifferenceT:
    case OpKind::kUnionT:
      return true;
    default:
      return false;
  }
}

std::string PlanNode::Describe() const {
  std::string out = OpKindName(kind_);
  switch (kind_) {
    case OpKind::kScan:
      out += " " + rel_name_;
      break;
    case OpKind::kSelect:
      out += " " + predicate_->ToString();
      break;
    case OpKind::kProject: {
      out += " [";
      for (size_t i = 0; i < projections_.size(); ++i) {
        if (i > 0) out += ", ";
        std::string e = projections_[i].expr->ToString();
        out += e;
        if (projections_[i].name != e) out += " AS " + projections_[i].name;
      }
      out += "]";
      break;
    }
    case OpKind::kAggregate:
    case OpKind::kAggregateT: {
      out += " [";
      for (size_t i = 0; i < group_by_.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_by_[i];
      }
      out += ";";
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::string(AggFuncName(aggregates_[i].func)) + "(" +
               aggregates_[i].attr + ") AS " + aggregates_[i].out_name;
      }
      out += "]";
      break;
    }
    case OpKind::kSort:
      out += " [" + SortSpecToString(sort_spec_) + "]";
      break;
    default:
      break;
  }
  return out;
}

uint64_t PlanNode::FingerprintPrefix(OpKind kind, uint64_t payload_hash) {
  return HashCombine(HashMix64(static_cast<uint64_t>(kind) + 0x51),
                     payload_hash);
}

uint64_t PlanNode::FingerprintOf(OpKind kind, uint64_t payload_hash,
                                 const std::vector<PlanPtr>& children) {
  uint64_t h = FingerprintPrefix(kind, payload_hash);
  for (const PlanPtr& c : children) h = HashCombine(h, c->fingerprint());
  return h;
}

void PlanNode::Finalize() {
  uint64_t h = 0;
  switch (kind_) {
    case OpKind::kScan:
      h = HashCombine(h, HashString(rel_name_));
      break;
    case OpKind::kSelect:
      h = HashCombine(h, predicate_->hash());
      break;
    case OpKind::kProject:
      for (const ProjItem& item : projections_) {
        h = HashCombine(h, item.expr->hash());
        h = HashCombine(h, HashString(item.name));
      }
      break;
    case OpKind::kAggregate:
    case OpKind::kAggregateT:
      for (const std::string& g : group_by_) h = HashCombine(h, HashString(g));
      for (const AggSpec& a : aggregates_) {
        h = HashCombine(h, static_cast<uint64_t>(a.func));
        h = HashCombine(h, HashString(a.attr));
        h = HashCombine(h, HashString(a.out_name));
      }
      break;
    case OpKind::kSort:
      for (const SortKey& k : sort_spec_) {
        h = HashCombine(h, HashString(k.attr));
        h = HashCombine(h, k.ascending ? 1 : 2);
      }
      break;
    default:
      break;
  }
  payload_hash_ = h;
  fingerprint_ = FingerprintOf(kind_, payload_hash_, children_);
  size_t size = 1;
  for (const PlanPtr& c : children_) size += c->subtree_size();
  subtree_size_ = size;
}

bool PlanNode::SamePayload(const PlanNode& a, const PlanNode& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case OpKind::kScan:
      return a.rel_name_ == b.rel_name_;
    case OpKind::kSelect:
      return Expr::Equals(a.predicate_, b.predicate_);
    case OpKind::kProject:
      if (a.projections_.size() != b.projections_.size()) return false;
      for (size_t i = 0; i < a.projections_.size(); ++i) {
        if (a.projections_[i].name != b.projections_[i].name ||
            !Expr::Equals(a.projections_[i].expr, b.projections_[i].expr)) {
          return false;
        }
      }
      return true;
    case OpKind::kAggregate:
    case OpKind::kAggregateT: {
      if (a.group_by_ != b.group_by_ ||
          a.aggregates_.size() != b.aggregates_.size()) {
        return false;
      }
      for (size_t i = 0; i < a.aggregates_.size(); ++i) {
        const AggSpec& x = a.aggregates_[i];
        const AggSpec& y = b.aggregates_[i];
        if (x.func != y.func || x.attr != y.attr || x.out_name != y.out_name) {
          return false;
        }
      }
      return true;
    }
    case OpKind::kSort:
      return a.sort_spec_ == b.sort_spec_;
    default:
      return true;  // payload-free operators
  }
}

bool PlanNode::SameShallow(const PlanNode& a, const PlanNode& b) {
  if (a.children_.size() != b.children_.size()) return false;
  for (size_t i = 0; i < a.children_.size(); ++i) {
    if (a.children_[i].get() != b.children_[i].get()) return false;
  }
  return SamePayload(a, b);
}

bool PlanNode::Equal(const PlanPtr& a, const PlanPtr& b) {
  if (a.get() == b.get()) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->fingerprint_ != b->fingerprint_ ||
      a->subtree_size_ != b->subtree_size_ ||
      a->children_.size() != b->children_.size()) {
    return false;
  }
  for (size_t i = 0; i < a->children_.size(); ++i) {
    if (!Equal(a->children_[i], b->children_[i])) return false;
  }
  return SamePayload(*a, *b);
}

// Builders assign private fields directly; PlanNode declares them privately,
// so each builder constructs through a local subclass with setter access.
struct PlanNodeBuilder : PlanNode {
  static std::shared_ptr<PlanNodeBuilder> Make() {
    return std::shared_ptr<PlanNodeBuilder>(new PlanNodeBuilder());
  }
  void Seal() { Finalize(); }
  void set_kind(OpKind k) { kind_ = k; }
  void set_children(std::vector<PlanPtr> c) { children_ = std::move(c); }
  void set_rel_name(std::string n) { rel_name_ = std::move(n); }
  void set_predicate(ExprPtr p) { predicate_ = std::move(p); }
  void set_projections(std::vector<ProjItem> p) { projections_ = std::move(p); }
  void set_group_by(std::vector<std::string> g) { group_by_ = std::move(g); }
  void set_aggregates(std::vector<AggSpec> a) { aggregates_ = std::move(a); }
  void set_sort_spec(SortSpec s) { sort_spec_ = std::move(s); }

 private:
  PlanNodeBuilder() : PlanNode() {}
};

PlanPtr PlanNode::Scan(std::string rel_name) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kScan);
  n->set_rel_name(std::move(rel_name));
  n->Seal();
  return n;
}

PlanPtr PlanNode::Select(PlanPtr input, ExprPtr predicate) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kSelect);
  n->set_children({std::move(input)});
  n->set_predicate(std::move(predicate));
  n->Seal();
  return n;
}

PlanPtr PlanNode::Project(PlanPtr input, std::vector<ProjItem> items) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kProject);
  n->set_children({std::move(input)});
  n->set_projections(std::move(items));
  n->Seal();
  return n;
}

PlanPtr PlanNode::UnionAll(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kUnionAll);
  n->set_children({std::move(left), std::move(right)});
  n->Seal();
  return n;
}

PlanPtr PlanNode::Product(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kProduct);
  n->set_children({std::move(left), std::move(right)});
  n->Seal();
  return n;
}

PlanPtr PlanNode::Difference(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kDifference);
  n->set_children({std::move(left), std::move(right)});
  n->Seal();
  return n;
}

PlanPtr PlanNode::Aggregate(PlanPtr input, std::vector<std::string> group_by,
                            std::vector<AggSpec> aggs) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kAggregate);
  n->set_children({std::move(input)});
  n->set_group_by(std::move(group_by));
  n->set_aggregates(std::move(aggs));
  n->Seal();
  return n;
}

PlanPtr PlanNode::Rdup(PlanPtr input) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kRdup);
  n->set_children({std::move(input)});
  n->Seal();
  return n;
}

PlanPtr PlanNode::ProductT(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kProductT);
  n->set_children({std::move(left), std::move(right)});
  n->Seal();
  return n;
}

PlanPtr PlanNode::DifferenceT(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kDifferenceT);
  n->set_children({std::move(left), std::move(right)});
  n->Seal();
  return n;
}

PlanPtr PlanNode::AggregateT(PlanPtr input, std::vector<std::string> group_by,
                             std::vector<AggSpec> aggs) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kAggregateT);
  n->set_children({std::move(input)});
  n->set_group_by(std::move(group_by));
  n->set_aggregates(std::move(aggs));
  n->Seal();
  return n;
}

PlanPtr PlanNode::RdupT(PlanPtr input) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kRdupT);
  n->set_children({std::move(input)});
  n->Seal();
  return n;
}

PlanPtr PlanNode::Union(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kUnion);
  n->set_children({std::move(left), std::move(right)});
  n->Seal();
  return n;
}

PlanPtr PlanNode::UnionT(PlanPtr left, PlanPtr right) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kUnionT);
  n->set_children({std::move(left), std::move(right)});
  n->Seal();
  return n;
}

PlanPtr PlanNode::Sort(PlanPtr input, SortSpec spec) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kSort);
  n->set_children({std::move(input)});
  n->set_sort_spec(std::move(spec));
  n->Seal();
  return n;
}

PlanPtr PlanNode::Coalesce(PlanPtr input) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kCoalesce);
  n->set_children({std::move(input)});
  n->Seal();
  return n;
}

PlanPtr PlanNode::TransferS(PlanPtr input) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kTransferS);
  n->set_children({std::move(input)});
  n->Seal();
  return n;
}

PlanPtr PlanNode::TransferD(PlanPtr input) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(OpKind::kTransferD);
  n->set_children({std::move(input)});
  n->Seal();
  return n;
}

PlanPtr PlanNode::WithChildren(const PlanPtr& node,
                               std::vector<PlanPtr> children) {
  auto n = PlanNodeBuilder::Make();
  n->set_kind(node->kind_);
  n->set_children(std::move(children));
  n->set_rel_name(node->rel_name_);
  if (node->predicate_) n->set_predicate(node->predicate_);
  n->set_projections(node->projections_);
  n->set_group_by(node->group_by_);
  n->set_aggregates(node->aggregates_);
  n->set_sort_spec(node->sort_spec_);
  n->Seal();
  return n;
}

std::string CanonicalString(const PlanPtr& plan) {
  std::string out = plan->Describe();
  if (!plan->children().empty()) {
    out += "(";
    for (size_t i = 0; i < plan->children().size(); ++i) {
      if (i > 0) out += ",";
      out += CanonicalString(plan->child(i));
    }
    out += ")";
  }
  return out;
}

size_t PlanSize(const PlanPtr& plan) { return plan->subtree_size(); }

void CollectNodes(const PlanPtr& plan, std::vector<PlanPtr>* out) {
  out->push_back(plan);
  for (const PlanPtr& c : plan->children()) CollectNodes(c, out);
}

namespace {

void CollectLocationsImpl(const PlanPtr& plan, PlanPath* path,
                          std::vector<PlanLocation>* out) {
  out->push_back(PlanLocation{plan, *path});
  for (uint32_t i = 0; i < plan->children().size(); ++i) {
    path->push_back(i);
    CollectLocationsImpl(plan->child(i), path, out);
    path->pop_back();
  }
}

}  // namespace

void CollectLocations(const PlanPtr& plan, std::vector<PlanLocation>* out) {
  out->reserve(out->size() + plan->subtree_size());
  PlanPath path;
  path.reserve(32);
  CollectLocationsImpl(plan, &path, out);
}

const PlanPtr& NodeAtPath(const PlanPtr& root, const PlanPath& path) {
  const PlanPtr* cur = &root;
  for (uint32_t step : path) {
    TQP_CHECK(step < (*cur)->arity());
    cur = &(*cur)->child(step);
  }
  return *cur;
}

namespace {

PlanPtr ReplaceAtPathImpl(const PlanPtr& root, const PlanPath& path,
                          size_t depth, PlanPtr replacement) {
  if (depth == path.size()) return replacement;
  uint32_t step = path[depth];
  TQP_CHECK(step < root->arity());
  std::vector<PlanPtr> children = root->children();
  children[step] =
      ReplaceAtPathImpl(root->child(step), path, depth + 1,
                        std::move(replacement));
  return PlanNode::WithChildren(root, std::move(children));
}

}  // namespace

PlanPtr ReplaceAtPath(const PlanPtr& root, const PlanPath& path,
                      PlanPtr replacement) {
  return ReplaceAtPathImpl(root, path, 0, std::move(replacement));
}

namespace {

// Must agree with PlanNode::FingerprintOf / Finalize: kind + payload hash,
// then the children's fingerprints in order, with the spine child at
// path[depth] substituted.
uint64_t FingerprintAtPathImpl(const PlanPtr& node, const PlanPath& path,
                               size_t depth, uint64_t rep_fp) {
  if (depth == path.size()) return rep_fp;
  uint32_t step = path[depth];
  TQP_DCHECK(step < node->arity());
  uint64_t child_fp =
      FingerprintAtPathImpl(node->child(step), path, depth + 1, rep_fp);
  uint64_t h = PlanNode::FingerprintPrefix(node->kind(), node->payload_hash());
  for (size_t i = 0; i < node->arity(); ++i) {
    h = HashCombine(h, i == step ? child_fp : node->child(i)->fingerprint());
  }
  return h;
}

bool EqualsWithReplacementImpl(const PlanPtr& target, const PlanPtr& base,
                               const PlanPath& path, size_t depth,
                               const PlanPtr& replacement) {
  if (depth == path.size()) return PlanNode::Equal(target, replacement);
  uint32_t step = path[depth];
  if (target->kind() != base->kind() || target->arity() != base->arity()) {
    return false;
  }
  if (!PlanNode::SamePayload(*target, *base)) return false;
  for (size_t i = 0; i < base->arity(); ++i) {
    if (i == static_cast<size_t>(step)) {
      if (!EqualsWithReplacementImpl(target->child(i), base->child(i), path,
                                     depth + 1, replacement)) {
        return false;
      }
      continue;
    }
    const PlanPtr& t = target->child(i);
    const PlanPtr& b = base->child(i);
    if (t.get() != b.get() && !PlanNode::Equal(t, b)) return false;
  }
  return true;
}

}  // namespace

uint64_t FingerprintAtPath(const PlanPtr& root, const PlanPath& path,
                           uint64_t replacement_fingerprint) {
  return FingerprintAtPathImpl(root, path, 0, replacement_fingerprint);
}

bool EqualsWithReplacement(const PlanPtr& target, const PlanPtr& base,
                           const PlanPath& path, const PlanPtr& replacement) {
  return EqualsWithReplacementImpl(target, base, path, 0, replacement);
}

PlanPtr ClonePlan(const PlanPtr& plan) {
  std::vector<PlanPtr> children;
  children.reserve(plan->children().size());
  for (const PlanPtr& c : plan->children()) children.push_back(ClonePlan(c));
  return PlanNode::WithChildren(plan, std::move(children));
}

PlanPtr ReplaceNode(const PlanPtr& root, const PlanNode* target,
                    PlanPtr replacement) {
  if (root.get() == target) return replacement;
  bool changed = false;
  std::vector<PlanPtr> new_children;
  new_children.reserve(root->children().size());
  for (const PlanPtr& c : root->children()) {
    PlanPtr nc = ReplaceNode(c, target, replacement);
    changed |= (nc != c);
    new_children.push_back(std::move(nc));
  }
  if (!changed) return root;
  return PlanNode::WithChildren(root, std::move(new_children));
}

}  // namespace tqp
