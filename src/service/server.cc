#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "core/json.h"
#include "core/metrics.h"
#include "core/profile.h"
#include "service/plan_store.h"

namespace tqp {

namespace {

/// Renders one attribute value into a result row. Ints and time points are
/// JSON numbers (the schema frame carries the column types, so a client can
/// tell them apart); non-finite doubles become null, matching JsonWriter.
void WriteRowValue(JsonWriter* w, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      w->Null();
      return;
    case ValueType::kInt:
      w->Int(v.AsInt());
      return;
    case ValueType::kDouble:
      w->Double(v.AsDouble());
      return;
    case ValueType::kString:
      w->String(v.AsString());
      return;
    case ValueType::kTime:
      w->Int(v.AsTime());
      return;
  }
}

/// Sends the whole buffer, retrying short writes. MSG_NOSIGNAL turns a
/// vanished peer into an EPIPE return instead of a process signal.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::string ServerStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("connections_total").Uint(connections_total);
  w.Key("connections_active").Uint(connections_active);
  w.Key("queries").Uint(queries);
  w.Key("errors").Uint(errors);
  w.Key("batches_sent").Uint(batches_sent);
  w.Key("rows_sent").Uint(rows_sent);
  w.Key("snapshots_written").Uint(snapshots_written);
  w.Key("plans_imported").Uint(plans_imported);
  w.Key("metrics_requests").Uint(metrics_requests);
  w.Key("traced_queries").Uint(traced_queries);
  w.EndObject();
  return w.Take();
}

void ServerStats::PublishTo(MetricsRegistry* registry) const {
  auto set = [registry](const char* name, uint64_t v) {
    registry->GetGauge(name)->Set(static_cast<double>(v));
  };
  set("tqp_server_connections_total", connections_total);
  set("tqp_server_connections_active", connections_active);
  set("tqp_server_queries", queries);
  set("tqp_server_errors", errors);
  set("tqp_server_batches_sent", batches_sent);
  set("tqp_server_rows_sent", rows_sent);
  set("tqp_server_snapshots_written", snapshots_written);
  set("tqp_server_plans_imported", plans_imported);
  set("tqp_server_metrics_requests", metrics_requests);
  set("tqp_server_traced_queries", traced_queries);
}

struct Server::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> finished{false};
  /// \trace on|off — queries on this connection run traced + profiled and
  /// stream trace/profile frames. Only the owning connection thread touches
  /// it.
  bool trace = false;
};

Server::Server(Engine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  TQP_CHECK(engine_ != nullptr);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  TQP_CHECK(!running_.load());

  if (!options_.snapshot_path.empty()) {
    auto loaded = LoadPlanCache(engine_, options_.snapshot_path);
    if (!loaded.ok()) return loaded.status();
    plans_imported_.store(loaded->imported, std::memory_order_relaxed);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Error("service: socket() failed: " +
                         std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Error("service: bad listen address '" + options_.host +
                         "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::Error("service: bind(" + options_.host + ":" +
                              std::to_string(options_.port) +
                              ") failed: " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status st = Status::Error("service: listen() failed: " +
                              std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    Status st = Status::Error("service: getsockname() failed: " +
                              std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(bound.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (!options_.snapshot_path.empty() && options_.snapshot_interval_s > 0) {
    snapshot_thread_ = std::thread([this] { SnapshotLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;

  // Unblock accept(2); the loop exits on the failed accept + cleared flag.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& conn : connections_) {
      // Unblocks the connection thread's recv(2); it finishes its current
      // query first, so no response is torn mid-frame.
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  snapshot_cv_.notify_all();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();

  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }

  if (!options_.snapshot_path.empty()) {
    if (SavePlanCache(*engine_, options_.snapshot_path).ok()) {
      snapshots_written_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_total = connections_total_.load(std::memory_order_relaxed);
  s.queries = queries_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.batches_sent = batches_sent_.load(std::memory_order_relaxed);
  s.rows_sent = rows_sent_.load(std::memory_order_relaxed);
  s.snapshots_written = snapshots_written_.load(std::memory_order_relaxed);
  s.plans_imported = plans_imported_.load(std::memory_order_relaxed);
  s.metrics_requests = metrics_requests_.load(std::memory_order_relaxed);
  s.traced_queries = traced_queries_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    uint64_t active = 0;
    for (const auto& conn : connections_) {
      if (!conn->finished.load(std::memory_order_acquire)) ++active;
    }
    s.connections_active = active;
  }
  return s;
}

void Server::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load(std::memory_order_acquire)) break;
      continue;  // transient accept failure (e.g. EMFILE); keep serving
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_total_.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ReapFinishedLocked();
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void Server::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::SnapshotLoop() {
  std::mutex wait_mu;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(wait_mu);
      snapshot_cv_.wait_for(
          lock, std::chrono::seconds(options_.snapshot_interval_s),
          [this] { return !running_.load(std::memory_order_acquire); });
    }
    if (!running_.load(std::memory_order_acquire)) return;
    if (SavePlanCache(*engine_, options_.snapshot_path).ok()) {
      snapshots_written_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Server::ServeConnection(Connection* conn) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    size_t nl = buffer.find('\n');
    if (nl == std::string::npos) {
      ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;  // peer closed or Stop() shut the read side down
      }
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line == "\\quit") break;

    std::string out;
    HandleLine(line, conn, &out);
    if (!SendAll(conn->fd, out)) break;
  }
  ::close(conn->fd);
  conn->finished.store(true, std::memory_order_release);
}

void Server::HandleLine(const std::string& line, Connection* conn,
                        std::string* out) {
  if (line == "\\stats") {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("stats");
    w.Key("server").Raw(stats().ToJson());
    w.Key("engine").Raw(engine_->stats().ToJson());
    w.EndObject();
    *out += w.Take();
    out->push_back('\n');
    return;
  }
  if (line == "\\metrics") {
    metrics_requests_.fetch_add(1, std::memory_order_relaxed);
    // Refresh the registry from the live stats snapshots, then render both
    // formats from the same state — the Prometheus text and the JSON in one
    // frame can never disagree.
    MetricsRegistry& reg = MetricsRegistry::Global();
    engine_->stats().PublishTo(&reg);
    stats().PublishTo(&reg);
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("metrics");
    w.Key("prometheus").String(reg.ToPrometheusText());
    w.Key("metrics").Raw(reg.ToJson());
    w.EndObject();
    *out += w.Take();
    out->push_back('\n');
    return;
  }
  if (line == "\\trace on" || line == "\\trace off") {
    conn->trace = line == "\\trace on";
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("trace_mode");
    w.Key("on").Bool(conn->trace);
    w.EndObject();
    *out += w.Take();
    out->push_back('\n');
    return;
  }

  QueryRunOptions run;
  run.trace = conn->trace;
  run.profile = conn->trace;
  if (conn->trace) traced_queries_.fetch_add(1, std::memory_order_relaxed);
  auto result = engine_->Query(line, run);
  if (!result.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("error");
    w.Key("message").String(result.status().message());
    w.EndObject();
    *out += w.Take();
    out->push_back('\n');
    return;
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  const QueryResult& qr = *result;
  const Relation& rel = qr.relation;

  {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("schema");
    w.Key("attrs").BeginArray();
    for (const Attribute& a : rel.schema().attrs()) {
      w.BeginObject();
      w.Key("name").String(a.name);
      w.Key("type").String(ValueTypeName(a.type));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    *out += w.Take();
    out->push_back('\n');
  }

  const size_t batch_rows = options_.batch_rows == 0 ? 256 : options_.batch_rows;
  size_t batches = 0;
  for (size_t start = 0; start < rel.size(); start += batch_rows) {
    const size_t end = std::min(rel.size(), start + batch_rows);
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("batch");
    w.Key("rows").BeginArray();
    for (size_t i = start; i < end; ++i) {
      w.BeginArray();
      for (const Value& v : rel.tuple(i).values()) WriteRowValue(&w, v);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
    *out += w.Take();
    out->push_back('\n');
    ++batches;
  }
  batches_sent_.fetch_add(batches, std::memory_order_relaxed);
  rows_sent_.fetch_add(rel.size(), std::memory_order_relaxed);

  if (qr.profile != nullptr) {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("profile");
    w.Key("profile").Raw(qr.profile->ToJson());
    w.EndObject();
    *out += w.Take();
    out->push_back('\n');
  }
  if (!qr.trace_json.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("trace");
    w.Key("trace").Raw(qr.trace_json);
    w.EndObject();
    *out += w.Take();
    out->push_back('\n');
  }

  {
    JsonWriter w;
    w.BeginObject();
    w.Key("type").String("done");
    w.Key("rows").Uint(rel.size());
    w.Key("batches").Uint(batches);
    w.Key("plan_cache_hit").Bool(qr.plan_cache_hit);
    w.Key("best_cost").Double(qr.best_cost);
    w.Key("initial_cost").Double(qr.initial_cost);
    w.Key("plans_considered").Uint(qr.plans_considered);
    w.Key("truncated").Bool(qr.truncated);
    w.Key("plan_fingerprint").Uint(qr.plan_fingerprint);
    w.Key("exec").Raw(qr.exec.ToJson());
    w.EndObject();
    *out += w.Take();
    out->push_back('\n');
  }
}

}  // namespace tqp
