// Cross-restart persistence of the Engine's plan cache.
//
// A warm tqp::Engine owes most of its throughput to the plan cache: a cached
// query skips parsing, the Figure 5 enumeration, and costing entirely
// (60–150x measured in bench_engine_warm). That warmth used to die with the
// process. The plan store serializes every cached entry — keys, contracts,
// optimizer telemetry, and the full initial/best plan trees (operators,
// predicates, projections, aggregates, sort specs) — to a snapshot file on
// shutdown or on an interval, and reloads it on startup, so a restarted
// server answers its first wave of traffic at warm speed.
//
// Staleness contract: the snapshot carries the catalog version *and* a
// catalog content fingerprint from export time. Engine::ImportPlanCache
// rejects the snapshot wholesale when either differs from the live catalog —
// a restarted server with a bumped or reshaped catalog starts cold, exactly
// as the in-memory caches are flushed wholesale on a version change. Warmth
// is an optimization only: a warm-started server returns byte-identical
// results to a cold one (locked by tests/test_service.cc and
// bench_service_load).
//
// The file format is a private whitespace-separated token stream
// (s-expressions with length-prefixed strings) — self-contained, versioned
// by a leading magic atom, no third-party dependencies. A corrupt or
// truncated file is a clean load error, never a crash or a partial import.
#ifndef TQP_SERVICE_PLAN_STORE_H_
#define TQP_SERVICE_PLAN_STORE_H_

#include <string>

#include "api/engine.h"

namespace tqp {

/// What LoadPlanCache found.
struct PlanStoreLoadOutcome {
  /// Entries actually installed into the engine's plan cache.
  size_t imported = 0;
  /// Entries present in the (accepted) snapshot file.
  size_t in_snapshot = 0;
  /// No snapshot file at the path (a normal cold start).
  bool file_missing = false;
  /// Snapshot was readable but written under a different catalog
  /// version/fingerprint — rejected wholesale, engine starts cold.
  bool stale = false;
};

/// Serializes `engine`'s plan cache to `path` (written to "<path>.tmp" and
/// renamed, so readers never observe a torn file). Concurrent queries keep
/// running; the export is a consistent snapshot under the engine's locks.
Status SavePlanCache(const Engine& engine, const std::string& path);

/// Loads a snapshot from `path` into `engine` through
/// Engine::ImportPlanCache. A missing file or a stale snapshot is a normal
/// outcome (see PlanStoreLoadOutcome), not an error; a corrupt file is an
/// error.
Result<PlanStoreLoadOutcome> LoadPlanCache(Engine* engine,
                                           const std::string& path);

// ---- Serialization primitives (exposed for tests) -------------------------

/// Canonical token-stream serialization of a plan tree (round-trips through
/// DeserializePlan to a structurally equal plan with identical fingerprint).
std::string SerializePlan(const PlanPtr& plan);
Result<PlanPtr> DeserializePlan(const std::string& data);

/// Whole-snapshot (de)serialization; SavePlanCache/LoadPlanCache are these
/// plus file I/O and the engine export/import hooks.
std::string SerializeSnapshot(const PlanCacheSnapshot& snapshot);
Result<PlanCacheSnapshot> DeserializeSnapshot(const std::string& data);

}  // namespace tqp

#endif  // TQP_SERVICE_PLAN_STORE_H_
