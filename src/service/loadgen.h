// A service client and a multi-client load driver for the TCP query service.
//
// ServiceClient speaks the newline-JSON protocol of service/server.h over a
// blocking socket: send one TQL line, collect frames until "done" or
// "error". The parser is deliberately thin — the server renders frames with
// fixed key order, so frame types are recognized by prefix and the few
// fields the driver needs ("rows", "plan_cache_hit") by substring. It is a
// measurement tool, not a general JSON client.
//
// RunLoad drives N concurrent clients against one server:
//   - closed loop (default): every client fires its next query the moment
//     the previous response is fully read — offered load tracks service
//     capacity, the natural overload mode.
//   - open loop (open_loop_qps > 0): clients pace sends to a fixed schedule
//     and the latency of queueing shows up in the percentiles.
//   - first-wave (rounds > 0): every client runs `rounds` deterministic
//     round-robin passes over the query mix and stops — the mode the
//     warm-vs-cold-start bench uses, with record_raw capturing the exact
//     result bytes for byte-identity checks.
//
// Latencies are recorded in microseconds into the lock-free
// core/latency_histogram.h; the report carries q/s plus p50/p99/p999.
#ifndef TQP_SERVICE_LOADGEN_H_
#define TQP_SERVICE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/common.h"
#include "core/latency_histogram.h"

namespace tqp {

/// Outcome of one query round trip on a ServiceClient.
struct QueryOutcome {
  bool ok = false;
  /// Server-reported message when !ok.
  std::string error;
  uint64_t rows = 0;
  uint64_t batches = 0;
  bool plan_cache_hit = false;
  /// Raw result frames (schema + batch lines, '\n'-terminated) when
  /// requested — the byte-identity unit. The "done" frame is excluded: its
  /// telemetry (plan_cache_hit, costs) legitimately differs warm vs cold.
  std::string raw;
};

/// One blocking connection to a Server. Not thread-safe; one client per
/// thread.
class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient() { Close(); }
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one TQL statement and reads frames until done/error.
  /// `capture_raw` fills QueryOutcome::raw. A transport failure (server
  /// gone) is a Status error; a query error is ok=false in the outcome.
  Result<QueryOutcome> RunQuery(const std::string& tql,
                                bool capture_raw = false);

  /// The server's "\stats" frame (one JSON line).
  Result<std::string> Stats();

  /// Sends one backslash command (e.g. "\\metrics", "\\trace on") and
  /// returns its single-line JSON response verbatim.
  Result<std::string> Command(const std::string& command);

 private:
  Result<std::string> ReadLine();

  int fd_ = -1;
  std::string buffer_;
};

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Concurrent client connections.
  size_t clients = 8;
  /// Wall-clock run length for duration-mode loops (ignored if rounds > 0).
  double duration_s = 1.0;
  /// The TQL mix; clients draw from it (weighted-uniform in duration mode,
  /// round-robin in rounds mode).
  std::vector<std::string> queries;
  /// > 0 = open-loop aggregate send rate across all clients; 0 = closed.
  double open_loop_qps = 0.0;
  /// > 0 = first-wave mode: each client runs `rounds` round-robin passes
  /// over `queries` and stops (duration_s ignored).
  size_t rounds = 0;
  /// Seed for the duration-mode query choice (client i uses seed + i).
  uint64_t seed = 42;
  /// Capture raw result frames (first-wave byte-identity checks).
  bool record_raw = false;
};

struct LoadGenReport {
  uint64_t queries = 0;
  uint64_t errors = 0;
  uint64_t batches = 0;
  uint64_t rows = 0;
  uint64_t plan_cache_hits = 0;
  double elapsed_s = 0.0;
  double qps = 0.0;
  /// Per-query round-trip latency in microseconds. (The histogram is
  /// non-movable — atomics — which is why RunLoad fills a caller-owned
  /// report instead of returning one.)
  LatencyHistogram latency_us;
  /// record_raw: concatenated raw result frames per client, in send order —
  /// deterministic in rounds mode, so two runs are directly comparable.
  std::vector<std::string> raw_by_client;

  /// Flat JSON: counters, qps, and the latency histogram summary.
  std::string ToJson() const;
};

/// Runs the configured load into `*report` (reset first) and blocks until
/// every client is done. Connection failures surface as the returned
/// Status; per-query errors are counted in the report.
Status RunLoad(const LoadGenOptions& options, LoadGenReport* report);

}  // namespace tqp

#endif  // TQP_SERVICE_LOADGEN_H_
