#include "service/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <random>
#include <thread>

#include "core/json.h"

namespace tqp {

namespace {

using Clock = std::chrono::steady_clock;

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.compare(0, std::strlen(prefix), prefix) == 0;
}

/// Extracts the integer after `"field":` in a fixed-key-order frame; 0 if
/// absent. Enough for the driver's "rows" counter — not a JSON parser.
uint64_t FrameUint(const std::string& frame, const char* field) {
  const std::string needle = std::string("\"") + field + "\":";
  const size_t pos = frame.find(needle);
  if (pos == std::string::npos) return 0;
  uint64_t v = 0;
  for (size_t i = pos + needle.size();
       i < frame.size() && frame[i] >= '0' && frame[i] <= '9'; ++i) {
    v = v * 10 + static_cast<uint64_t>(frame[i] - '0');
  }
  return v;
}

/// Extracts the string after `"field":"` up to the closing quote, undoing
/// only the escapes JsonEscape emits for common characters.
std::string FrameString(const std::string& frame, const char* field) {
  const std::string needle = std::string("\"") + field + "\":\"";
  const size_t pos = frame.find(needle);
  if (pos == std::string::npos) return "";
  std::string out;
  for (size_t i = pos + needle.size(); i < frame.size(); ++i) {
    char c = frame[i];
    if (c == '"') break;
    if (c == '\\' && i + 1 < frame.size()) {
      char e = frame[++i];
      switch (e) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        default: out += e; break;  // \" \\ and the rest verbatim
      }
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

// ---- ServiceClient ---------------------------------------------------------

Status ServiceClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Error("loadgen: socket() failed: " +
                         std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::Error("loadgen: bad address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Error("loadgen: connect(" + host + ":" +
                              std::to_string(port) +
                              ") failed: " + std::strerror(errno));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void ServiceClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<std::string> ServiceClient::ReadLine() {
  char chunk[4096];
  while (true) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::Error("loadgen: connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<QueryOutcome> ServiceClient::RunQuery(const std::string& tql,
                                             bool capture_raw) {
  if (fd_ < 0) return Status::Error("loadgen: not connected");
  if (!SendAll(fd_, tql + "\n")) {
    return Status::Error("loadgen: send failed: " +
                         std::string(std::strerror(errno)));
  }
  QueryOutcome out;
  while (true) {
    TQP_ASSIGN_OR_RETURN(line, ReadLine());
    if (HasPrefix(line, "{\"type\":\"error\"")) {
      out.ok = false;
      out.error = FrameString(line, "message");
      return out;
    }
    if (HasPrefix(line, "{\"type\":\"done\"")) {
      out.ok = true;
      out.rows = FrameUint(line, "rows");
      out.batches = FrameUint(line, "batches");
      out.plan_cache_hit =
          line.find("\"plan_cache_hit\":true") != std::string::npos;
      return out;
    }
    if (HasPrefix(line, "{\"type\":\"schema\"") ||
        HasPrefix(line, "{\"type\":\"batch\"")) {
      if (capture_raw) {
        out.raw += line;
        out.raw += '\n';
      }
      continue;
    }
    if (HasPrefix(line, "{\"type\":\"profile\"") ||
        HasPrefix(line, "{\"type\":\"trace\"")) {
      // \trace on extras. Excluded from raw like the done frame: their
      // timings legitimately differ run to run.
      continue;
    }
    return Status::Error("loadgen: unexpected frame: " + line.substr(0, 80));
  }
}

Result<std::string> ServiceClient::Stats() {
  TQP_ASSIGN_OR_RETURN(line, Command("\\stats"));
  if (!HasPrefix(line, "{\"type\":\"stats\"")) {
    return Status::Error("loadgen: unexpected stats frame: " +
                         line.substr(0, 80));
  }
  return line;
}

Result<std::string> ServiceClient::Command(const std::string& command) {
  if (fd_ < 0) return Status::Error("loadgen: not connected");
  if (!SendAll(fd_, command + "\n")) {
    return Status::Error("loadgen: send failed");
  }
  return ReadLine();
}

// ---- RunLoad ---------------------------------------------------------------

std::string LoadGenReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("queries").Uint(queries);
  w.Key("errors").Uint(errors);
  w.Key("batches").Uint(batches);
  w.Key("rows").Uint(rows);
  w.Key("plan_cache_hits").Uint(plan_cache_hits);
  w.Key("elapsed_s").Double(elapsed_s);
  w.Key("qps").Double(qps);
  w.Key("latency_us").Raw(latency_us.ToJson());
  w.EndObject();
  return w.Take();
}

Status RunLoad(const LoadGenOptions& options, LoadGenReport* report) {
  TQP_CHECK(report != nullptr);
  if (options.queries.empty()) {
    return Status::InvalidArgument("loadgen: empty query mix");
  }
  if (options.clients == 0) {
    return Status::InvalidArgument("loadgen: zero clients");
  }
  report->queries = 0;
  report->errors = 0;
  report->batches = 0;
  report->rows = 0;
  report->plan_cache_hits = 0;
  report->elapsed_s = 0;
  report->qps = 0;
  report->latency_us.Reset();
  report->raw_by_client.assign(options.clients, std::string());

  // Connect everyone before the clock starts, so "first wave" measures
  // query service, not TCP handshakes.
  std::vector<std::unique_ptr<ServiceClient>> clients;
  clients.reserve(options.clients);
  for (size_t i = 0; i < options.clients; ++i) {
    auto c = std::make_unique<ServiceClient>();
    TQP_RETURN_IF_ERROR(c->Connect(options.host, options.port));
    clients.push_back(std::move(c));
  }

  struct ClientTotals {
    uint64_t queries = 0, errors = 0, batches = 0, rows = 0, hits = 0;
    Status transport = Status::OK();
  };
  std::vector<ClientTotals> totals(options.clients);

  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));
  // Open loop: each client owns an interleaved slice of the aggregate
  // schedule (client i sends at ticks i, i+N, i+2N, ...).
  const double send_interval_s =
      options.open_loop_qps > 0
          ? static_cast<double>(options.clients) / options.open_loop_qps
          : 0.0;

  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (size_t ci = 0; ci < options.clients; ++ci) {
    threads.emplace_back([&, ci] {
      ServiceClient& client = *clients[ci];
      ClientTotals& t = totals[ci];
      std::mt19937_64 rng(options.seed + ci);
      std::uniform_int_distribution<size_t> pick(0,
                                                 options.queries.size() - 1);
      auto next_send =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          send_interval_s > 0
                              ? (static_cast<double>(ci) /
                                 options.open_loop_qps)
                              : 0.0));
      size_t sent = 0;
      const size_t quota =
          options.rounds > 0 ? options.rounds * options.queries.size() : 0;
      while (true) {
        if (quota > 0) {
          if (sent >= quota) break;
        } else if (Clock::now() >= deadline) {
          break;
        }
        if (send_interval_s > 0) {
          std::this_thread::sleep_until(next_send);
          next_send += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(send_interval_s));
        }
        const size_t qi =
            quota > 0 ? sent % options.queries.size() : pick(rng);
        const auto q_start = Clock::now();
        auto outcome = client.RunQuery(options.queries[qi],
                                       options.record_raw);
        const auto q_end = Clock::now();
        if (!outcome.ok()) {
          t.transport = outcome.status();
          break;
        }
        const uint64_t us =
            static_cast<uint64_t>(std::chrono::duration_cast<
                                      std::chrono::microseconds>(q_end -
                                                                 q_start)
                                      .count());
        report->latency_us.Record(us);
        ++t.queries;
        ++sent;
        if (outcome->ok) {
          t.batches += outcome->batches;
          t.rows += outcome->rows;
          if (outcome->plan_cache_hit) ++t.hits;
          if (options.record_raw) {
            report->raw_by_client[ci] += outcome->raw;
          }
        } else {
          ++t.errors;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  for (const ClientTotals& t : totals) {
    TQP_RETURN_IF_ERROR(t.transport);
    report->queries += t.queries;
    report->errors += t.errors;
    report->batches += t.batches;
    report->rows += t.rows;
    report->plan_cache_hits += t.hits;
  }
  report->elapsed_s = elapsed;
  report->qps = elapsed > 0 ? static_cast<double>(report->queries) / elapsed
                            : 0.0;
  return Status::OK();
}

}  // namespace tqp
