// A thin multi-tenant TCP query service over a shared tqp::Engine.
//
// The Engine facade is already a multi-session optimizer/executor — shared
// plan cache, admission control, catalog invalidation — so the service layer
// stays deliberately small: accept connections, read one TQL statement per
// line, run it through the shared Engine, and stream the result back as
// newline-delimited JSON frames. No third-party dependencies: the protocol
// is plain sockets plus the in-tree core/json.h writer.
//
// Wire protocol (all frames are single-line JSON objects, '\n'-terminated):
//
//   client → server   one TQL statement per line, or a backslash command:
//                       \stats   engine + server counters
//                       \metrics unified metrics registry (Prometheus + JSON)
//                       \trace on|off  per-connection query tracing/profiling
//                       \quit    close the connection
//   server → client   for a successful query:
//                       {"type":"schema","attrs":[{"name":..,"type":..},..]}
//                       {"type":"batch","rows":[[v,..],..]}     (repeated)
//                       {"type":"done","rows":N,"batches":M,
//                        "plan_cache_hit":b,"best_cost":..,"exec":{..}}
//                     for a failed query (connection stays usable):
//                       {"type":"error","message":"..."}
//                     for \stats:
//                       {"type":"stats","server":{..},"engine":{..}}
//                     for \metrics (after publishing engine + server stats
//                     into MetricsRegistry::Global()):
//                       {"type":"metrics","prometheus":"..","metrics":{..}}
//                     with \trace on, two extra frames precede "done":
//                       {"type":"profile","profile":{..}}   (EXPLAIN ANALYZE)
//                       {"type":"trace","trace":{..}}       (Chrome trace)
//
// The "done" frame embeds ExecStats::ToJson()/EngineStats::ToJson() — the
// same renderings the benches embed, so service responses and bench JSON
// cannot drift.
//
// Lifecycle: Start() optionally warm-starts the plan cache from
// ServerOptions::snapshot_path (see service/plan_store.h), binds, and spawns
// the accept loop; Stop() drains connections, joins every thread, and writes
// a final snapshot. A snapshot_interval_s > 0 additionally snapshots on a
// background timer, so a crash loses at most one interval of warmth.
//
// Locking: the server takes no Engine locks itself — every query goes
// through the public Engine API, which owns the admission semaphore →
// catalog lock → state lock order. Server-internal state (the connection
// list) is guarded by a leaf mutex never held across Engine calls.
#ifndef TQP_SERVICE_SERVER_H_
#define TQP_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"

namespace tqp {

struct ServerOptions {
  /// Listen address. Tests and benches use the loopback default.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is readable via Server::port().
  uint16_t port = 0;
  /// Rows per "batch" frame.
  size_t batch_rows = 256;
  /// Plan-cache snapshot file. Empty = no persistence. When set, Start()
  /// imports it (missing/stale files are normal cold starts) and Stop()
  /// writes a final snapshot.
  std::string snapshot_path;
  /// Seconds between background snapshots; 0 = snapshot only on Stop().
  unsigned snapshot_interval_s = 0;
  /// listen(2) backlog.
  int backlog = 128;
};

/// Service-level counters (the Engine keeps its own in EngineStats).
struct ServerStats {
  uint64_t connections_total = 0;
  uint64_t connections_active = 0;
  uint64_t queries = 0;
  uint64_t errors = 0;
  uint64_t batches_sent = 0;
  uint64_t rows_sent = 0;
  uint64_t snapshots_written = 0;
  /// Plan-cache entries imported at warm start.
  uint64_t plans_imported = 0;
  /// \metrics frames served.
  uint64_t metrics_requests = 0;
  /// Queries run with per-connection tracing on (\trace on).
  uint64_t traced_queries = 0;

  std::string ToJson() const;

  /// Publishes every counter above into `registry` as tqp_server_* gauges
  /// (idempotent set; the \metrics handler republishes per request).
  void PublishTo(MetricsRegistry* registry) const;
};

/// One server instance bound to one shared Engine. The Engine must outlive
/// the server. Thread-per-connection; every public method is thread-safe.
class Server {
 public:
  Server(Engine* engine, ServerOptions options);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Warm-starts from the snapshot (if configured), binds, listens, and
  /// starts accepting. Returns an error if the socket cannot be bound or a
  /// present snapshot file is corrupt.
  Status Start();

  /// Stops accepting, unblocks and joins every connection thread, writes a
  /// final snapshot (if configured). Idempotent.
  void Stop();

  /// The bound port (resolved after Start() when options.port == 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  ServerStats stats() const;
  Engine* engine() const { return engine_; }

 private:
  struct Connection;

  void AcceptLoop();
  void SnapshotLoop();
  void ServeConnection(Connection* conn);
  /// Runs one TQL statement (or backslash command); appends response frames.
  void HandleLine(const std::string& line, Connection* conn,
                  std::string* out);
  void ReapFinishedLocked();

  Engine* engine_;
  ServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::thread snapshot_thread_;

  mutable std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::condition_variable snapshot_cv_;

  std::atomic<uint64_t> connections_total_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> batches_sent_{0};
  std::atomic<uint64_t> rows_sent_{0};
  std::atomic<uint64_t> snapshots_written_{0};
  std::atomic<uint64_t> plans_imported_{0};
  std::atomic<uint64_t> metrics_requests_{0};
  std::atomic<uint64_t> traced_queries_{0};
};

}  // namespace tqp

#endif  // TQP_SERVICE_SERVER_H_
