#include "service/plan_store.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace tqp {

namespace {

// ---- Token-stream writer ---------------------------------------------------
//
// The format is a flat whitespace-separated token stream with s-expression
// grouping. Atoms are bare words/numbers; strings are length-prefixed
// ("<len>:<bytes>") so arbitrary query text, relation names, and literals
// round-trip without any escaping rules.

void A(std::string* out, const char* atom) {
  if (!out->empty() && out->back() != '(') out->push_back(' ');
  *out += atom;
}

void WInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  A(out, buf);
}

void WUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  A(out, buf);
}

void WDbl(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // exact double round trip
  A(out, buf);
}

void WStr(std::string* out, const std::string& s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "\"%zu:", s.size());
  A(out, buf);
  *out += s;  // raw bytes, immediately after the colon
}

void Open(std::string* out) {
  if (!out->empty() && out->back() != '(') out->push_back(' ');
  out->push_back('(');
}

void Close(std::string* out) { out->push_back(')'); }

// ---- Token-stream reader ---------------------------------------------------

class Reader {
 public:
  explicit Reader(const std::string& s) : s_(s) {}

  bool AtEnd() {
    SkipWs();
    return pos_ >= s_.size();
  }

  /// True iff the next token is ')' (does not consume).
  bool PeekClose() {
    SkipWs();
    return pos_ < s_.size() && s_[pos_] == ')';
  }

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      return Corrupt(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> Atom() {
    SkipWs();
    if (pos_ >= s_.size()) return Corrupt("unexpected end of stream");
    char c = s_[pos_];
    if (c == '(' || c == ')' || c == '"') {
      return Corrupt("expected atom");
    }
    size_t start = pos_;
    while (pos_ < s_.size() && !std::isspace(static_cast<unsigned char>(
                                   s_[pos_])) &&
           s_[pos_] != '(' && s_[pos_] != ')') {
      ++pos_;
    }
    return s_.substr(start, pos_ - start);
  }

  Result<std::string> Str() {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return Corrupt("expected string");
    }
    ++pos_;
    size_t len = 0;
    bool any = false;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      len = len * 10 + static_cast<size_t>(s_[pos_] - '0');
      if (len > s_.size()) return Corrupt("string length overruns stream");
      ++pos_;
      any = true;
    }
    if (!any || pos_ >= s_.size() || s_[pos_] != ':') {
      return Corrupt("malformed string length prefix");
    }
    ++pos_;
    if (pos_ + len > s_.size()) return Corrupt("string overruns stream");
    std::string out = s_.substr(pos_, len);
    pos_ += len;
    return out;
  }

  Result<int64_t> Int() {
    TQP_ASSIGN_OR_RETURN(a, Atom());
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(a.c_str(), &end, 10);
    if (errno != 0 || end == a.c_str() || *end != '\0') {
      return Corrupt("malformed integer '" + a + "'");
    }
    return static_cast<int64_t>(v);
  }

  Result<uint64_t> Uint() {
    TQP_ASSIGN_OR_RETURN(a, Atom());
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(a.c_str(), &end, 10);
    if (errno != 0 || end == a.c_str() || *end != '\0' || a[0] == '-') {
      return Corrupt("malformed unsigned integer '" + a + "'");
    }
    return static_cast<uint64_t>(v);
  }

  Result<double> Dbl() {
    TQP_ASSIGN_OR_RETURN(a, Atom());
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(a.c_str(), &end);
    if (end == a.c_str() || *end != '\0') {
      return Corrupt("malformed double '" + a + "'");
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  Status Corrupt(const std::string& what) const {
    return Status::Error("plan store: corrupt snapshot at byte " +
                         std::to_string(pos_) + ": " + what);
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---- Values ----------------------------------------------------------------

void WriteValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      A(out, "vn");
      return;
    case ValueType::kInt:
      A(out, "vi");
      WInt(out, v.AsInt());
      return;
    case ValueType::kDouble:
      A(out, "vd");
      WDbl(out, v.AsDouble());
      return;
    case ValueType::kString:
      A(out, "vs");
      WStr(out, v.AsString());
      return;
    case ValueType::kTime:
      A(out, "vt");
      WInt(out, v.AsTime());
      return;
  }
}

Result<Value> ReadValue(Reader* r) {
  TQP_ASSIGN_OR_RETURN(tag, r->Atom());
  if (tag == "vn") return Value::Null();
  if (tag == "vi") {
    TQP_ASSIGN_OR_RETURN(v, r->Int());
    return Value::Int(v);
  }
  if (tag == "vd") {
    TQP_ASSIGN_OR_RETURN(v, r->Dbl());
    return Value::Double(v);
  }
  if (tag == "vs") {
    TQP_ASSIGN_OR_RETURN(v, r->Str());
    return Value::String(v);
  }
  if (tag == "vt") {
    TQP_ASSIGN_OR_RETURN(v, r->Int());
    return Value::Time(v);
  }
  return Status::Error("plan store: unknown value tag '" + tag + "'");
}

// ---- Expressions -----------------------------------------------------------

void WriteExpr(std::string* out, const ExprPtr& e) {
  Open(out);
  switch (e->kind()) {
    case ExprKind::kAttr:
      A(out, "attr");
      WStr(out, e->attr_name());
      break;
    case ExprKind::kConst:
      A(out, "const");
      WriteValue(out, e->constant());
      break;
    case ExprKind::kCompare:
      A(out, "cmp");
      WInt(out, static_cast<int64_t>(e->compare_op()));
      break;
    case ExprKind::kAnd:
      A(out, "and");
      break;
    case ExprKind::kOr:
      A(out, "or");
      break;
    case ExprKind::kNot:
      A(out, "not");
      break;
    case ExprKind::kArith:
      A(out, "arith");
      WInt(out, static_cast<int64_t>(e->arith_op()));
      break;
    case ExprKind::kOverlaps:
      A(out, "overlaps");
      break;
  }
  for (const ExprPtr& c : e->children()) WriteExpr(out, c);
  Close(out);
}

Result<ExprPtr> ReadExpr(Reader* r) {
  TQP_RETURN_IF_ERROR(r->Expect('('));
  TQP_ASSIGN_OR_RETURN(tag, r->Atom());

  std::string attr_name;
  Value constant;
  int64_t op = 0;
  if (tag == "attr") {
    TQP_ASSIGN_OR_RETURN(s, r->Str());
    attr_name = s;
  } else if (tag == "const") {
    TQP_ASSIGN_OR_RETURN(v, ReadValue(r));
    constant = v;
  } else if (tag == "cmp" || tag == "arith") {
    TQP_ASSIGN_OR_RETURN(o, r->Int());
    op = o;
  } else if (tag != "and" && tag != "or" && tag != "not" &&
             tag != "overlaps") {
    return Status::Error("plan store: unknown expression tag '" + tag + "'");
  }

  std::vector<ExprPtr> children;
  while (!r->PeekClose()) {
    TQP_ASSIGN_OR_RETURN(c, ReadExpr(r));
    children.push_back(c);
  }
  TQP_RETURN_IF_ERROR(r->Expect(')'));

  auto arity = [&](size_t n) -> Status {
    if (children.size() != n) {
      return Status::Error("plan store: expression '" + tag + "' expects " +
                           std::to_string(n) + " children, got " +
                           std::to_string(children.size()));
    }
    return Status::OK();
  };

  if (tag == "attr") {
    TQP_RETURN_IF_ERROR(arity(0));
    return Expr::Attr(std::move(attr_name));
  }
  if (tag == "const") {
    TQP_RETURN_IF_ERROR(arity(0));
    return Expr::Const(std::move(constant));
  }
  if (tag == "cmp") {
    TQP_RETURN_IF_ERROR(arity(2));
    if (op < 0 || op > static_cast<int64_t>(CompareOp::kGe)) {
      return Status::Error("plan store: compare op out of range");
    }
    return Expr::Compare(static_cast<CompareOp>(op), children[0], children[1]);
  }
  if (tag == "and") {
    TQP_RETURN_IF_ERROR(arity(2));
    return Expr::And(children[0], children[1]);
  }
  if (tag == "or") {
    TQP_RETURN_IF_ERROR(arity(2));
    return Expr::Or(children[0], children[1]);
  }
  if (tag == "not") {
    TQP_RETURN_IF_ERROR(arity(1));
    return Expr::Not(children[0]);
  }
  if (tag == "arith") {
    TQP_RETURN_IF_ERROR(arity(2));
    if (op < 0 || op > static_cast<int64_t>(ArithOp::kDiv)) {
      return Status::Error("plan store: arith op out of range");
    }
    return Expr::Arith(static_cast<ArithOp>(op), children[0], children[1]);
  }
  // overlaps
  TQP_RETURN_IF_ERROR(arity(4));
  return Expr::Overlaps(children[0], children[1], children[2], children[3]);
}

// ---- Sort specs and contracts ----------------------------------------------

void WriteSortSpec(std::string* out, const SortSpec& spec) {
  Open(out);
  A(out, "sortspec");
  for (const SortKey& k : spec) {
    WStr(out, k.attr);
    WInt(out, k.ascending ? 1 : 0);
  }
  Close(out);
}

Result<SortSpec> ReadSortSpec(Reader* r) {
  TQP_RETURN_IF_ERROR(r->Expect('('));
  TQP_ASSIGN_OR_RETURN(tag, r->Atom());
  if (tag != "sortspec") {
    return Status::Error("plan store: expected sortspec, got '" + tag + "'");
  }
  SortSpec spec;
  while (!r->PeekClose()) {
    TQP_ASSIGN_OR_RETURN(attr, r->Str());
    TQP_ASSIGN_OR_RETURN(asc, r->Int());
    spec.push_back(SortKey{attr, asc != 0});
  }
  TQP_RETURN_IF_ERROR(r->Expect(')'));
  return spec;
}

void WriteContract(std::string* out, const QueryContract& c) {
  Open(out);
  A(out, "contract");
  WInt(out, static_cast<int64_t>(c.result_type));
  WriteSortSpec(out, c.order_by);
  Close(out);
}

Result<QueryContract> ReadContract(Reader* r) {
  TQP_RETURN_IF_ERROR(r->Expect('('));
  TQP_ASSIGN_OR_RETURN(tag, r->Atom());
  if (tag != "contract") {
    return Status::Error("plan store: expected contract, got '" + tag + "'");
  }
  TQP_ASSIGN_OR_RETURN(type, r->Int());
  if (type < 0 || type > static_cast<int64_t>(ResultType::kSet)) {
    return Status::Error("plan store: result type out of range");
  }
  TQP_ASSIGN_OR_RETURN(order, ReadSortSpec(r));
  TQP_RETURN_IF_ERROR(r->Expect(')'));
  QueryContract c;
  c.result_type = static_cast<ResultType>(type);
  c.order_by = std::move(order);
  return c;
}

// ---- Plans -----------------------------------------------------------------

const std::unordered_map<std::string, OpKind>& KindByName() {
  static const std::unordered_map<std::string, OpKind>* map = [] {
    auto* m = new std::unordered_map<std::string, OpKind>();
    for (size_t i = 0; i < kOpKindCount; ++i) {
      OpKind k = static_cast<OpKind>(i);
      (*m)[OpKindName(k)] = k;
    }
    return m;
  }();
  return *map;
}

void WritePlanNode(std::string* out, const PlanPtr& p) {
  Open(out);
  A(out, OpKindName(p->kind()));
  switch (p->kind()) {
    case OpKind::kScan:
      WStr(out, p->rel_name());
      break;
    case OpKind::kSelect:
      WriteExpr(out, p->predicate());
      break;
    case OpKind::kProject:
      Open(out);
      A(out, "items");
      for (const ProjItem& item : p->projections()) {
        WStr(out, item.name);
        WriteExpr(out, item.expr);
      }
      Close(out);
      break;
    case OpKind::kAggregate:
    case OpKind::kAggregateT:
      Open(out);
      A(out, "group");
      for (const std::string& g : p->group_by()) WStr(out, g);
      Close(out);
      Open(out);
      A(out, "aggs");
      for (const AggSpec& a : p->aggregates()) {
        WInt(out, static_cast<int64_t>(a.func));
        WStr(out, a.attr);
        WStr(out, a.out_name);
      }
      Close(out);
      break;
    case OpKind::kSort:
      WriteSortSpec(out, p->sort_spec());
      break;
    default:
      break;  // pure structural operators carry no payload
  }
  for (const PlanPtr& c : p->children()) WritePlanNode(out, c);
  Close(out);
}

Result<PlanPtr> ReadPlanNode(Reader* r) {
  TQP_RETURN_IF_ERROR(r->Expect('('));
  TQP_ASSIGN_OR_RETURN(name, r->Atom());
  auto it = KindByName().find(name);
  if (it == KindByName().end()) {
    return Status::Error("plan store: unknown operator '" + name + "'");
  }
  const OpKind kind = it->second;

  std::string rel_name;
  ExprPtr predicate;
  std::vector<ProjItem> items;
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggs;
  SortSpec sort_spec;

  switch (kind) {
    case OpKind::kScan: {
      TQP_ASSIGN_OR_RETURN(s, r->Str());
      rel_name = s;
      break;
    }
    case OpKind::kSelect: {
      TQP_ASSIGN_OR_RETURN(e, ReadExpr(r));
      predicate = e;
      break;
    }
    case OpKind::kProject: {
      TQP_RETURN_IF_ERROR(r->Expect('('));
      TQP_ASSIGN_OR_RETURN(tag, r->Atom());
      if (tag != "items") return Status::Error("plan store: expected items");
      while (!r->PeekClose()) {
        TQP_ASSIGN_OR_RETURN(n, r->Str());
        TQP_ASSIGN_OR_RETURN(e, ReadExpr(r));
        items.push_back(ProjItem{e, n});
      }
      TQP_RETURN_IF_ERROR(r->Expect(')'));
      break;
    }
    case OpKind::kAggregate:
    case OpKind::kAggregateT: {
      TQP_RETURN_IF_ERROR(r->Expect('('));
      TQP_ASSIGN_OR_RETURN(gtag, r->Atom());
      if (gtag != "group") return Status::Error("plan store: expected group");
      while (!r->PeekClose()) {
        TQP_ASSIGN_OR_RETURN(g, r->Str());
        group_by.push_back(g);
      }
      TQP_RETURN_IF_ERROR(r->Expect(')'));
      TQP_RETURN_IF_ERROR(r->Expect('('));
      TQP_ASSIGN_OR_RETURN(atag, r->Atom());
      if (atag != "aggs") return Status::Error("plan store: expected aggs");
      while (!r->PeekClose()) {
        TQP_ASSIGN_OR_RETURN(f, r->Int());
        if (f < 0 || f > static_cast<int64_t>(AggFunc::kAvg)) {
          return Status::Error("plan store: aggregate function out of range");
        }
        TQP_ASSIGN_OR_RETURN(attr, r->Str());
        TQP_ASSIGN_OR_RETURN(out_name, r->Str());
        aggs.push_back(AggSpec{static_cast<AggFunc>(f), attr, out_name});
      }
      TQP_RETURN_IF_ERROR(r->Expect(')'));
      break;
    }
    case OpKind::kSort: {
      TQP_ASSIGN_OR_RETURN(s, ReadSortSpec(r));
      sort_spec = std::move(s);
      break;
    }
    default:
      break;
  }

  std::vector<PlanPtr> children;
  while (!r->PeekClose()) {
    TQP_ASSIGN_OR_RETURN(c, ReadPlanNode(r));
    children.push_back(c);
  }
  TQP_RETURN_IF_ERROR(r->Expect(')'));

  auto arity = [&](size_t n) -> Status {
    if (children.size() != n) {
      return Status::Error("plan store: operator '" + name + "' expects " +
                           std::to_string(n) + " children, got " +
                           std::to_string(children.size()));
    }
    return Status::OK();
  };

  switch (kind) {
    case OpKind::kScan:
      TQP_RETURN_IF_ERROR(arity(0));
      return PlanNode::Scan(std::move(rel_name));
    case OpKind::kSelect:
      TQP_RETURN_IF_ERROR(arity(1));
      return PlanNode::Select(children[0], predicate);
    case OpKind::kProject:
      TQP_RETURN_IF_ERROR(arity(1));
      return PlanNode::Project(children[0], std::move(items));
    case OpKind::kUnionAll:
      TQP_RETURN_IF_ERROR(arity(2));
      return PlanNode::UnionAll(children[0], children[1]);
    case OpKind::kProduct:
      TQP_RETURN_IF_ERROR(arity(2));
      return PlanNode::Product(children[0], children[1]);
    case OpKind::kDifference:
      TQP_RETURN_IF_ERROR(arity(2));
      return PlanNode::Difference(children[0], children[1]);
    case OpKind::kAggregate:
      TQP_RETURN_IF_ERROR(arity(1));
      return PlanNode::Aggregate(children[0], std::move(group_by),
                                 std::move(aggs));
    case OpKind::kRdup:
      TQP_RETURN_IF_ERROR(arity(1));
      return PlanNode::Rdup(children[0]);
    case OpKind::kProductT:
      TQP_RETURN_IF_ERROR(arity(2));
      return PlanNode::ProductT(children[0], children[1]);
    case OpKind::kDifferenceT:
      TQP_RETURN_IF_ERROR(arity(2));
      return PlanNode::DifferenceT(children[0], children[1]);
    case OpKind::kAggregateT:
      TQP_RETURN_IF_ERROR(arity(1));
      return PlanNode::AggregateT(children[0], std::move(group_by),
                                  std::move(aggs));
    case OpKind::kRdupT:
      TQP_RETURN_IF_ERROR(arity(1));
      return PlanNode::RdupT(children[0]);
    case OpKind::kUnion:
      TQP_RETURN_IF_ERROR(arity(2));
      return PlanNode::Union(children[0], children[1]);
    case OpKind::kUnionT:
      TQP_RETURN_IF_ERROR(arity(2));
      return PlanNode::UnionT(children[0], children[1]);
    case OpKind::kSort:
      TQP_RETURN_IF_ERROR(arity(1));
      return PlanNode::Sort(children[0], std::move(sort_spec));
    case OpKind::kCoalesce:
      TQP_RETURN_IF_ERROR(arity(1));
      return PlanNode::Coalesce(children[0]);
    case OpKind::kTransferS:
      TQP_RETURN_IF_ERROR(arity(1));
      return PlanNode::TransferS(children[0]);
    case OpKind::kTransferD:
      TQP_RETURN_IF_ERROR(arity(1));
      return PlanNode::TransferD(children[0]);
  }
  return Status::Error("plan store: unreachable operator kind");
}

// v2 added the backend kind + calibration fingerprint to the header; a v1
// file fails the magic check and is treated as a stale snapshot (cold
// start), exactly like any other format mismatch.
constexpr const char* kMagic = "tqp-plan-cache-v2";

}  // namespace

// ---- Public serialization --------------------------------------------------

std::string SerializePlan(const PlanPtr& plan) {
  std::string out;
  WritePlanNode(&out, plan);
  return out;
}

Result<PlanPtr> DeserializePlan(const std::string& data) {
  Reader r(data);
  TQP_ASSIGN_OR_RETURN(plan, ReadPlanNode(&r));
  if (!r.AtEnd()) {
    return Status::Error("plan store: trailing bytes after plan");
  }
  return plan;
}

std::string SerializeSnapshot(const PlanCacheSnapshot& snapshot) {
  std::string out;
  A(&out, kMagic);
  WUint(&out, snapshot.catalog_version);
  WUint(&out, snapshot.catalog_fingerprint);
  WStr(&out, snapshot.backend_kind);
  WUint(&out, snapshot.calibration_fingerprint);
  WUint(&out, snapshot.entries.size());
  out.push_back('\n');
  for (const PlanCacheEntry& e : snapshot.entries) {
    Open(&out);
    A(&out, "entry");
    WStr(&out, e.key);
    WStr(&out, e.text);
    WriteContract(&out, e.contract);
    WDbl(&out, e.best_cost);
    WDbl(&out, e.initial_cost);
    WUint(&out, e.plans_considered);
    WInt(&out, e.truncated ? 1 : 0);
    Open(&out);
    A(&out, "derivation");
    for (const std::string& d : e.derivation) WStr(&out, d);
    Close(&out);
    WritePlanNode(&out, e.initial_plan);
    WritePlanNode(&out, e.best_plan);
    Close(&out);
    out.push_back('\n');
  }
  return out;
}

Result<PlanCacheSnapshot> DeserializeSnapshot(const std::string& data) {
  Reader r(data);
  TQP_ASSIGN_OR_RETURN(magic, r.Atom());
  if (magic != kMagic) {
    return Status::Error("plan store: bad magic '" + magic +
                         "' (expected " + kMagic + ")");
  }
  PlanCacheSnapshot out;
  TQP_ASSIGN_OR_RETURN(version, r.Uint());
  TQP_ASSIGN_OR_RETURN(fingerprint, r.Uint());
  TQP_ASSIGN_OR_RETURN(backend_kind, r.Str());
  TQP_ASSIGN_OR_RETURN(calibration_fp, r.Uint());
  TQP_ASSIGN_OR_RETURN(count, r.Uint());
  out.catalog_version = version;
  out.catalog_fingerprint = fingerprint;
  out.backend_kind = backend_kind;
  out.calibration_fingerprint = calibration_fp;
  out.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TQP_RETURN_IF_ERROR(r.Expect('('));
    TQP_ASSIGN_OR_RETURN(tag, r.Atom());
    if (tag != "entry") return Status::Error("plan store: expected entry");
    PlanCacheEntry e;
    TQP_ASSIGN_OR_RETURN(key, r.Str());
    e.key = key;
    TQP_ASSIGN_OR_RETURN(text, r.Str());
    e.text = text;
    TQP_ASSIGN_OR_RETURN(contract, ReadContract(&r));
    e.contract = contract;
    TQP_ASSIGN_OR_RETURN(best_cost, r.Dbl());
    e.best_cost = best_cost;
    TQP_ASSIGN_OR_RETURN(initial_cost, r.Dbl());
    e.initial_cost = initial_cost;
    TQP_ASSIGN_OR_RETURN(considered, r.Uint());
    e.plans_considered = static_cast<size_t>(considered);
    TQP_ASSIGN_OR_RETURN(truncated, r.Int());
    e.truncated = truncated != 0;
    TQP_RETURN_IF_ERROR(r.Expect('('));
    TQP_ASSIGN_OR_RETURN(dtag, r.Atom());
    if (dtag != "derivation") {
      return Status::Error("plan store: expected derivation");
    }
    while (!r.PeekClose()) {
      TQP_ASSIGN_OR_RETURN(d, r.Str());
      e.derivation.push_back(d);
    }
    TQP_RETURN_IF_ERROR(r.Expect(')'));
    TQP_ASSIGN_OR_RETURN(initial, ReadPlanNode(&r));
    e.initial_plan = initial;
    TQP_ASSIGN_OR_RETURN(best, ReadPlanNode(&r));
    e.best_plan = best;
    TQP_RETURN_IF_ERROR(r.Expect(')'));
    out.entries.push_back(std::move(e));
  }
  if (!r.AtEnd()) {
    return Status::Error("plan store: trailing bytes after last entry");
  }
  return out;
}

// ---- File I/O --------------------------------------------------------------

Status SavePlanCache(const Engine& engine, const std::string& path) {
  const std::string data = SerializeSnapshot(engine.ExportPlanCache());
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("plan store: cannot open '" + tmp + "' for writing");
  }
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != data.size() || !close_ok) {
    std::remove(tmp.c_str());
    return Status::Error("plan store: short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Error("plan store: cannot rename '" + tmp + "' to '" +
                         path + "'");
  }
  return Status::OK();
}

Result<PlanStoreLoadOutcome> LoadPlanCache(Engine* engine,
                                           const std::string& path) {
  PlanStoreLoadOutcome out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    out.file_missing = true;  // a normal cold start
    return out;
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Error("plan store: read error on '" + path + "'");
  }
  TQP_ASSIGN_OR_RETURN(snapshot, DeserializeSnapshot(data));
  out.in_snapshot = snapshot.entries.size();
  out.imported = engine->ImportPlanCache(snapshot);
  // ImportPlanCache rejects wholesale on version/fingerprint mismatch; an
  // accepted snapshot installs every entry whose relations still exist.
  out.stale = out.imported == 0 && out.in_snapshot > 0;
  return out;
}

}  // namespace tqp
