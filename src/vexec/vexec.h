// The vectorized batch execution engine.
//
// ExecuteVectorized compiles an AnnotatedPlan into a tree of vectorized
// physical operators over columnar data (core/column_batch.h) and runs it:
// scans convert base relations to ColumnTables batch-wise, selections and
// projections evaluate compiled expressions over column batches into
// selection vectors / fresh columns, joins run over flat period arrays, and
// the order/duplicate-sensitive operations (rdup, rdupT, coalT, \T, ∪T, ℵT)
// run the reference algorithms over row indices and typed columns instead of
// per-tuple Value vectors.
//
// The list-semantics parity contract: for every plan, configuration (both
// dbms_scrambles_order modes), and catalog, the returned Relation is
// LIST-IDENTICAL to exec/evaluator.h's Evaluate — the same tuples, in the
// same order, with the same surviving occurrences under duplicate
// elimination, the same difference fragment order, the same rdupT in-place
// period replacement, and the same order annotation. This is enforced by the
// randomized A/B suite in tests/test_vexec.cc; the speedup is gated by
// bench/bench_vexec_pipeline.cc (>= 5x rows/s over the reference evaluator
// on a 1M-row coalesce + temporal-join + sort pipeline).
//
// ExecStats is shared with the reference evaluator: the per-site work,
// transfer, and operator counters are computed from the same formulas, and
// the vectorized path additionally fills the batch/materialization counters
// (ExecStats::vec_batches / vec_materializations / vec_rows).
#ifndef TQP_VEXEC_VEXEC_H_
#define TQP_VEXEC_VEXEC_H_

#include "exec/evaluator.h"

namespace tqp {

/// Tuning knobs of the vectorized executor. Semantics never depend on them:
/// any thread count, morsel size, or memory budget produces the same result
/// list, byte for byte (tests/test_vexec.cc locks this in).
struct VexecOptions {
  /// Rows per column batch processed at a time by the scan/filter/projection
  /// kernels. Also the granularity of ExecStats::vec_batches.
  size_t batch_size = 1024;
  /// Worker threads of the morsel scheduler (core/task_pool.h). 1 (default)
  /// runs every kernel inline on the calling thread — the exact
  /// pre-parallelism code path; N > 1 splits kernels into morsels whose
  /// results are stitched in deterministic input order, so the output is
  /// byte-identical to the serial run.
  size_t threads = 1;
  /// Rows per morsel when threads > 1.
  size_t morsel_rows = 32768;
  /// Approximate per-operator materialization budget in bytes. When an
  /// input exceeds it, sort switches to an external merge sort (spilled
  /// runs) and rdup/coalesce/aggregate partition their class/group tables
  /// to a temp file (core/spill.h), processing one partition at a time.
  /// 0 (default) = unlimited, never spill.
  uint64_t memory_budget = 0;
};

/// Evaluates an annotated plan with the vectorized engine. Drop-in
/// equivalent of Evaluate(): same result list, same order annotation, same
/// error statuses, same simulated cost accounting — including the optional
/// per-plan-node `profile` tree (core/profile.h; batches filled here).
Result<Relation> ExecuteVectorized(const AnnotatedPlan& plan,
                                   const EngineConfig& config = {},
                                   ExecStats* stats = nullptr,
                                   const VexecOptions& options = {},
                                   ProfileNode* profile = nullptr);

/// Convenience twin of EvaluatePlan(): annotates a raw plan tree (multiset
/// contract) and executes it vectorized. Intended for tests.
Result<Relation> ExecuteVectorizedPlan(const PlanPtr& plan,
                                       const Catalog& catalog,
                                       const EngineConfig& config = {},
                                       ExecStats* stats = nullptr,
                                       const VexecOptions& options = {});

}  // namespace tqp

#endif  // TQP_VEXEC_VEXEC_H_
