// Internal pieces of the vectorized executor: the batch expression
// evaluator shared by the select/project kernels. Include only from
// src/vexec/*.cc.
#ifndef TQP_VEXEC_VEXEC_INTERNAL_H_
#define TQP_VEXEC_VEXEC_INTERNAL_H_

#include <string>
#include <unordered_map>

#include "algebra/expr.h"
#include "core/column_batch.h"

namespace tqp {
namespace vexec {

/// The result of evaluating one expression over a row range: one cell per
/// row plus the per-row evaluation errors. Errors stay per-row because the
/// reference evaluator's error behavior is per-tuple: a selection treats an
/// erroring row as "predicate false", while a projection fails the whole
/// query with the error of the first erroring (row, item) pair. Error cells
/// hold a null placeholder so the column stays row-aligned.
struct EvalColumn {
  ColumnVec col;
  /// row offset (0-based within the evaluated range) -> full Status message.
  std::unordered_map<uint32_t, std::string> errs;

  const std::string* ErrAt(uint32_t row) const {
    auto it = errs.find(row);
    return it == errs.end() ? nullptr : &it->second;
  }
};

/// Evaluates `expr` over rows [begin, end) of `in`, reproducing
/// Expr::Eval's semantics cell-for-cell: the same null propagation, the
/// same short-circuit order of AND/OR (a row short-circuited by the left
/// operand ignores right-operand errors), the same arithmetic typing, and
/// the same error messages.
EvalColumn VecEval(const ExprPtr& expr, const ColumnTable& in, size_t begin,
                   size_t end);

}  // namespace vexec
}  // namespace tqp

#endif  // TQP_VEXEC_VEXEC_INTERNAL_H_
