// Vectorized expression evaluation over column batches.
//
// Mirrors Expr::Eval exactly, but column-at-a-time: every case below is the
// per-row transcription of the corresponding case in algebra/expr.cc, with
// Result<Value> replaced by (cell, per-row error) pairs so one traversal of
// the expression tree serves a whole batch.
#include "vexec/vexec_internal.h"

namespace tqp {
namespace vexec {

namespace {

const CellRef kNullCell{};

CellRef IntCell(int64_t v) {
  CellRef c;
  c.type = ValueType::kInt;
  c.i = v;
  return c;
}

}  // namespace

EvalColumn VecEval(const ExprPtr& expr, const ColumnTable& in, size_t begin,
                   size_t end) {
  const size_t n = end - begin;
  EvalColumn out;
  switch (expr->kind()) {
    case ExprKind::kAttr: {
      int idx = in.schema().IndexOf(expr->attr_name());
      if (idx < 0) {
        // The reference fails per tuple; an unknown attribute errs every row
        // with the identical message (and none at all on an empty input).
        std::string msg = Status::InvalidArgument(
                              "unknown attribute '" + expr->attr_name() +
                              "' in " + in.schema().ToString())
                              .message();
        for (uint32_t k = 0; k < n; ++k) {
          out.col.AppendNull();
          out.errs.emplace(k, msg);
        }
        return out;
      }
      out.col.AppendRangeFrom(in.col(static_cast<size_t>(idx)), begin, end);
      return out;
    }
    case ExprKind::kConst: {
      CellRef c = CellRef::Of(expr->constant());
      for (size_t k = 0; k < n; ++k) out.col.AppendCell(c);
      return out;
    }
    case ExprKind::kCompare: {
      EvalColumn l = VecEval(expr->children()[0], in, begin, end);
      EvalColumn r = VecEval(expr->children()[1], in, begin, end);
      for (uint32_t k = 0; k < n; ++k) {
        if (const std::string* e = l.ErrAt(k)) {
          out.col.AppendNull();
          out.errs.emplace(k, *e);
          continue;
        }
        if (const std::string* e = r.ErrAt(k)) {
          out.col.AppendNull();
          out.errs.emplace(k, *e);
          continue;
        }
        CellRef lc = l.col.At(k), rc = r.col.At(k);
        if (lc.is_null() || rc.is_null()) {
          out.col.AppendNull();
          continue;
        }
        int c = CellRef::Compare(lc, rc);
        bool v = false;
        switch (expr->compare_op()) {
          case CompareOp::kEq:
            v = c == 0;
            break;
          case CompareOp::kNe:
            v = c != 0;
            break;
          case CompareOp::kLt:
            v = c < 0;
            break;
          case CompareOp::kLe:
            v = c <= 0;
            break;
          case CompareOp::kGt:
            v = c > 0;
            break;
          case CompareOp::kGe:
            v = c >= 0;
            break;
        }
        out.col.AppendCell(IntCell(v ? 1 : 0));
      }
      return out;
    }
    case ExprKind::kAnd: {
      EvalColumn l = VecEval(expr->children()[0], in, begin, end);
      EvalColumn r = VecEval(expr->children()[1], in, begin, end);
      for (uint32_t k = 0; k < n; ++k) {
        if (const std::string* e = l.ErrAt(k)) {
          out.col.AppendNull();
          out.errs.emplace(k, *e);
          continue;
        }
        CellRef lc = l.col.At(k);
        // Left short-circuit: a false left operand decides the row before
        // the right operand's outcome (including its errors) is consulted.
        if (!lc.is_null() && lc.Numeric() == 0) {
          out.col.AppendCell(IntCell(0));
          continue;
        }
        if (const std::string* e = r.ErrAt(k)) {
          out.col.AppendNull();
          out.errs.emplace(k, *e);
          continue;
        }
        CellRef rc = r.col.At(k);
        if (lc.is_null() || rc.is_null()) {
          out.col.AppendNull();
          continue;
        }
        out.col.AppendCell(IntCell(rc.Numeric() != 0 ? 1 : 0));
      }
      return out;
    }
    case ExprKind::kOr: {
      EvalColumn l = VecEval(expr->children()[0], in, begin, end);
      EvalColumn r = VecEval(expr->children()[1], in, begin, end);
      for (uint32_t k = 0; k < n; ++k) {
        if (const std::string* e = l.ErrAt(k)) {
          out.col.AppendNull();
          out.errs.emplace(k, *e);
          continue;
        }
        CellRef lc = l.col.At(k);
        if (!lc.is_null() && lc.Numeric() != 0) {
          out.col.AppendCell(IntCell(1));
          continue;
        }
        if (const std::string* e = r.ErrAt(k)) {
          out.col.AppendNull();
          out.errs.emplace(k, *e);
          continue;
        }
        CellRef rc = r.col.At(k);
        if (lc.is_null() || rc.is_null()) {
          out.col.AppendNull();
          continue;
        }
        out.col.AppendCell(IntCell(rc.Numeric() != 0 ? 1 : 0));
      }
      return out;
    }
    case ExprKind::kNot: {
      EvalColumn v = VecEval(expr->children()[0], in, begin, end);
      for (uint32_t k = 0; k < n; ++k) {
        if (const std::string* e = v.ErrAt(k)) {
          out.col.AppendNull();
          out.errs.emplace(k, *e);
          continue;
        }
        CellRef c = v.col.At(k);
        if (c.is_null()) {
          out.col.AppendNull();
          continue;
        }
        out.col.AppendCell(IntCell(c.Numeric() == 0 ? 1 : 0));
      }
      return out;
    }
    case ExprKind::kArith: {
      EvalColumn l = VecEval(expr->children()[0], in, begin, end);
      EvalColumn r = VecEval(expr->children()[1], in, begin, end);
      const std::string non_numeric =
          Status::InvalidArgument("arithmetic on non-numeric values")
              .message();
      for (uint32_t k = 0; k < n; ++k) {
        if (const std::string* e = l.ErrAt(k)) {
          out.col.AppendNull();
          out.errs.emplace(k, *e);
          continue;
        }
        if (const std::string* e = r.ErrAt(k)) {
          out.col.AppendNull();
          out.errs.emplace(k, *e);
          continue;
        }
        CellRef lc = l.col.At(k), rc = r.col.At(k);
        if (lc.is_null() || rc.is_null()) {
          out.col.AppendNull();
          continue;
        }
        if (!lc.IsNumeric() || !rc.IsNumeric()) {
          out.col.AppendNull();
          out.errs.emplace(k, non_numeric);
          continue;
        }
        bool integral = lc.type != ValueType::kDouble &&
                        rc.type != ValueType::kDouble;
        bool timey =
            lc.type == ValueType::kTime || rc.type == ValueType::kTime;
        double a = lc.Numeric();
        double b = rc.Numeric();
        double res = 0;
        bool div_null = false;
        switch (expr->arith_op()) {
          case ArithOp::kAdd:
            res = a + b;
            break;
          case ArithOp::kSub:
            res = a - b;
            break;
          case ArithOp::kMul:
            res = a * b;
            break;
          case ArithOp::kDiv:
            if (b == 0) {
              div_null = true;
            } else {
              res = a / b;
            }
            integral = false;
            break;
        }
        if (div_null) {
          out.col.AppendNull();
        } else if (integral && timey) {
          CellRef c;
          c.type = ValueType::kTime;
          c.i = static_cast<TimePoint>(res);
          out.col.AppendCell(c);
        } else if (integral) {
          out.col.AppendCell(IntCell(static_cast<int64_t>(res)));
        } else {
          CellRef c;
          c.type = ValueType::kDouble;
          c.d = res;
          out.col.AppendCell(c);
        }
      }
      return out;
    }
    case ExprKind::kOverlaps: {
      EvalColumn a = VecEval(expr->children()[0], in, begin, end);
      EvalColumn b = VecEval(expr->children()[1], in, begin, end);
      EvalColumn c = VecEval(expr->children()[2], in, begin, end);
      EvalColumn d = VecEval(expr->children()[3], in, begin, end);
      const EvalColumn* ops[4] = {&a, &b, &c, &d};
      for (uint32_t k = 0; k < n; ++k) {
        const std::string* err = nullptr;
        for (const EvalColumn* op : ops) {
          if ((err = op->ErrAt(k)) != nullptr) break;
        }
        if (err != nullptr) {
          out.col.AppendNull();
          out.errs.emplace(k, *err);
          continue;
        }
        CellRef ca = a.col.At(k), cb = b.col.At(k), cc = c.col.At(k),
                cd = d.col.At(k);
        if (ca.is_null() || cb.is_null() || cc.is_null() || cd.is_null()) {
          out.col.AppendNull();
          continue;
        }
        bool v = ca.Numeric() < cd.Numeric() && cc.Numeric() < cb.Numeric();
        out.col.AppendCell(IntCell(v ? 1 : 0));
      }
      return out;
    }
  }
  // Unreachable kinds mirror Eval's "unreachable expression kind" status.
  std::string msg = Status::Error("unreachable expression kind").message();
  for (uint32_t k = 0; k < n; ++k) {
    out.col.AppendNull();
    out.errs.emplace(k, msg);
  }
  (void)kNullCell;
  return out;
}

}  // namespace vexec
}  // namespace tqp
