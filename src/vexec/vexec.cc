// Vectorized operator kernels and the plan driver.
//
// Every kernel is the columnar transcription of the corresponding Eval* in
// exec/eval_ops.cc: the same algorithm over row indices and typed columns
// instead of per-tuple Value vectors, so the produced list is identical —
// including which occurrence survives duplicate elimination, difference
// fragment order, and rdupT's in-place period replacement. Hash-based
// duplicate/class lookups reuse the exact Tuple::Hash / Tuple::Compare
// semantics through ColumnTable::RowHash / RowCompare; wherever the
// reference uses an ordered map whose iteration order is semantically inert
// (per-class temporal sweeps, group tables that record first-occurrence
// order separately), the kernels use open hashing instead.
#include "vexec/vexec.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "vexec/vexec_internal.h"

namespace tqp {

namespace {

using vexec::EvalColumn;
using vexec::VecEval;

// ---- Row-identity hashing (full-tuple equality) ---------------------------

struct RowRef {
  const ColumnTable* t;
  uint32_t row;
  uint64_t hash;  // ColumnTable::RowHash(row)
};

struct RowRefHash {
  size_t operator()(const RowRef& k) const { return k.hash; }
};

struct RowRefEq {
  bool operator()(const RowRef& a, const RowRef& b) const {
    if (a.hash != b.hash) return false;  // hash is a function of the row
    return ColumnTable::RowEquals(*a.t, a.row, *b.t, b.row);
  }
};

RowRef FullRow(const ColumnTable& t, uint32_t row) {
  return RowRef{&t, row, t.RowHash(row)};
}

// ---- Value-equivalence-class hashing (non-time attributes) ----------------

struct ClassRefEq {
  bool operator()(const RowRef& a, const RowRef& b) const {
    if (a.hash != b.hash) return false;
    return ColumnTable::RowCompareNonTemporal(*a.t, a.row, *b.t, b.row) == 0;
  }
};

RowRef ClassRow(const ColumnTable& t, uint32_t row) {
  return RowRef{&t, row, t.RowHashNonTemporal(row)};
}

// ---- Kernels --------------------------------------------------------------

Result<ColumnTable> VecScan(const CatalogEntry& entry) {
  return ColumnTable::FromRelation(entry.data);
}

ColumnTable VecSelect(const ColumnTable& in, const ExprPtr& predicate,
                      size_t batch_size) {
  std::vector<uint32_t> keep;
  for (size_t b = 0; b < in.rows(); b += batch_size) {
    size_t e = std::min(in.rows(), b + batch_size);
    EvalColumn ec = VecEval(predicate, in, b, e);
    for (uint32_t k = 0; k < e - b; ++k) {
      // EvalPredicate semantics: an erroring or NULL row is simply false.
      if (ec.ErrAt(k) != nullptr) continue;
      CellRef c = ec.col.At(k);
      if (c.is_null()) continue;
      if (c.Numeric() != 0) keep.push_back(static_cast<uint32_t>(b + k));
    }
  }
  ColumnTable out(in.schema());
  out.AppendGather(in, keep);
  return out;
}

Result<ColumnTable> VecProject(const ColumnTable& in,
                               const std::vector<ProjItem>& items,
                               const Schema& out_schema, size_t batch_size) {
  // The reference fails with the error of the first erroring row (and that
  // row's first erroring item): rows outermost, so an error at (row, item)
  // is superseded only by one at a strictly smaller row. Evaluate
  // column-at-a-time, keep the minimum, and bound every later evaluation to
  // rows below the best error found so far — rows the reference itself
  // evaluated for every item. Beyond saving the work, this keeps abort
  // behavior aligned: a later item is never evaluated on rows the
  // reference never reached.
  size_t err_row = static_cast<size_t>(-1);
  std::string err_msg;
  std::vector<ColumnVec> cols(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t b = 0; b < std::min(in.rows(), err_row); b += batch_size) {
      size_t e = std::min({in.rows(), err_row, b + batch_size});
      EvalColumn ec = VecEval(items[i].expr, in, b, e);
      for (const auto& [k, msg] : ec.errs) {
        if (b + k < err_row) {
          err_row = b + k;
          err_msg = msg;
        }
      }
      cols[i].AppendRangeFrom(ec.col, 0, e - b);
    }
  }
  if (err_row != static_cast<size_t>(-1)) return Status::Error(err_msg);
  ColumnTable out(out_schema);
  for (size_t i = 0; i < cols.size(); ++i) {
    out.mutable_col(i) = std::move(cols[i]);
  }
  out.CommitRows(in.rows());
  return out;
}

ColumnTable VecUnionAll(const ColumnTable& l, const ColumnTable& r,
                        const Schema& out_schema) {
  ColumnTable out(out_schema);
  out.AppendRange(l, 0, l.rows());
  out.AppendRange(r, 0, r.rows());
  return out;
}

ColumnTable VecUnion(const ColumnTable& l, const ColumnTable& r,
                     const Schema& out_schema) {
  ColumnTable out(out_schema);
  out.AppendRange(l, 0, l.rows());
  std::unordered_map<RowRef, int64_t, RowRefHash, RowRefEq> left_count;
  left_count.reserve(l.rows());
  for (uint32_t i = 0; i < l.rows(); ++i) ++left_count[FullRow(l, i)];
  std::unordered_map<RowRef, int64_t, RowRefHash, RowRefEq> right_seen;
  std::vector<uint32_t> extra;
  for (uint32_t j = 0; j < r.rows(); ++j) {
    RowRef key = FullRow(r, j);
    int64_t seen = ++right_seen[key];
    auto it = left_count.find(key);
    int64_t in_left = it == left_count.end() ? 0 : it->second;
    if (seen > in_left) extra.push_back(j);
  }
  out.AppendGather(r, extra);
  return out;
}

ColumnTable VecProduct(const ColumnTable& l, const ColumnTable& r,
                       const Schema& out_schema) {
  // Left-major pair order, generated column-wise: left columns repeat each
  // cell |r| times, right columns tile |l| times.
  ColumnTable out(out_schema);
  size_t pos = 0;
  for (size_t c = 0; c < l.num_cols(); ++c, ++pos) {
    ColumnVec& dst = out.mutable_col(pos);
    dst.Reserve(l.rows() * r.rows());
    for (size_t i = 0; i < l.rows(); ++i) {
      for (size_t j = 0; j < r.rows(); ++j) dst.AppendFrom(l.col(c), i);
    }
  }
  for (size_t c = 0; c < r.num_cols(); ++c, ++pos) {
    ColumnVec& dst = out.mutable_col(pos);
    dst.Reserve(l.rows() * r.rows());
    for (size_t i = 0; i < l.rows(); ++i) {
      dst.AppendRangeFrom(r.col(c), 0, r.rows());
    }
  }
  out.CommitRows(l.rows() * r.rows());
  return out;
}

ColumnTable VecDifference(const ColumnTable& l, const ColumnTable& r) {
  std::unordered_map<RowRef, int64_t, RowRefHash, RowRefEq> cancel;
  cancel.reserve(r.rows());
  for (uint32_t j = 0; j < r.rows(); ++j) ++cancel[FullRow(r, j)];
  std::vector<uint32_t> keep;
  for (uint32_t i = 0; i < l.rows(); ++i) {
    auto it = cancel.find(FullRow(l, i));
    if (it != cancel.end() && it->second > 0) {
      --it->second;
      continue;
    }
    keep.push_back(i);
  }
  ColumnTable out(l.schema());
  out.AppendGather(l, keep);
  return out;
}

ColumnTable VecRdup(const ColumnTable& in, const Schema& out_schema) {
  std::unordered_set<RowRef, RowRefHash, RowRefEq> seen;
  seen.reserve(in.rows());
  std::vector<uint32_t> keep;
  for (uint32_t i = 0; i < in.rows(); ++i) {
    if (seen.insert(FullRow(in, i)).second) keep.push_back(i);
  }
  ColumnTable out(out_schema);
  out.AppendGather(in, keep);
  return out;
}

ColumnTable VecSort(const ColumnTable& in, const SortSpec& spec) {
  // Per-key comparators specialized once on the column's storage class, so
  // the O(n log n) comparison loop touches raw typed vectors. Null-free
  // typed columns order exactly as Value::Compare does (same type, payload
  // order); anything else falls back to the generic cell comparison.
  enum class KeyKind { kInt64, kDouble, kString, kGeneric };
  struct Key {
    const ColumnVec* col;
    KeyKind kind;
    bool ascending;
  };
  std::vector<Key> keys;
  for (const SortKey& k : spec) {
    int idx = in.schema().IndexOf(k.attr);
    TQP_CHECK(idx >= 0);
    const ColumnVec& col = in.col(static_cast<size_t>(idx));
    KeyKind kind = KeyKind::kGeneric;
    if (!col.MayHaveNulls()) {
      switch (col.storage()) {
        case ColumnStorage::kInt64:
          kind = KeyKind::kInt64;
          break;
        case ColumnStorage::kDouble:
          kind = KeyKind::kDouble;
          break;
        case ColumnStorage::kString:
          kind = KeyKind::kString;
          break;
        default:
          break;
      }
    }
    keys.push_back(Key{&col, kind, k.ascending});
  }
  std::vector<uint32_t> order(in.rows());
  for (uint32_t i = 0; i < in.rows(); ++i) order[i] = i;
  auto key_compare = [](const Key& k, uint32_t a, uint32_t b) {
    switch (k.kind) {
      case KeyKind::kInt64: {
        int64_t x = k.col->ints()[a], y = k.col->ints()[b];
        return x < y ? -1 : (y < x ? 1 : 0);
      }
      case KeyKind::kDouble: {
        double x = k.col->doubles()[a], y = k.col->doubles()[b];
        return x < y ? -1 : (y < x ? 1 : 0);
      }
      case KeyKind::kString: {
        int c = k.col->strings()[a].compare(k.col->strings()[b]);
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
      }
      case KeyKind::kGeneric:
        return CellRef::Compare(k.col->At(a), k.col->At(b));
    }
    return 0;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (const Key& k : keys) {
                       int c = key_compare(k, a, b);
                       if (c != 0) return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  ColumnTable out(in.schema());
  out.AppendGather(in, order);
  return out;
}

// Extracts the T1/T2 endpoints of every row into flat arrays.
void ExtractPeriods(const ColumnTable& t, std::vector<TimePoint>* begins,
                    std::vector<TimePoint>* ends) {
  begins->resize(t.rows());
  ends->resize(t.rows());
  const ColumnVec& c1 = t.col(static_cast<size_t>(t.t1_index()));
  const ColumnVec& c2 = t.col(static_cast<size_t>(t.t2_index()));
  for (size_t i = 0; i < t.rows(); ++i) {
    (*begins)[i] = c1.At(i).i;
    (*ends)[i] = c2.At(i).i;
  }
}

ColumnTable VecProductT(const ColumnTable& l, const ColumnTable& r,
                        const Schema& out_schema) {
  std::vector<TimePoint> lb, le, rb, re;
  ExtractPeriods(l, &lb, &le);
  ExtractPeriods(r, &rb, &re);
  // The hot loop: the overlap test runs over flat endpoint arrays —
  // max(begin) < min(end) is exactly lp.Intersect(rp).Valid(), the
  // reference's pair filter. Matched (left, right) row pairs are gathered
  // column-wise afterwards.
  std::vector<uint32_t> li, ri;
  for (uint32_t i = 0; i < l.rows(); ++i) {
    TimePoint b = lb[i], e = le[i];
    for (uint32_t j = 0; j < r.rows(); ++j) {
      if (std::max(b, rb[j]) < std::min(e, re[j])) {
        li.push_back(i);
        ri.push_back(j);
      }
    }
  }
  ColumnTable out(out_schema);
  size_t pos = 0;
  int l1 = l.t1_index(), l2 = l.t2_index();
  int r1 = r.t1_index(), r2 = r.t2_index();
  for (size_t c = 0; c < l.num_cols(); ++c) {
    if (static_cast<int>(c) == l1 || static_cast<int>(c) == l2) continue;
    out.mutable_col(pos++).AppendGather(l.col(c), li.data(), li.size());
  }
  for (size_t c = 0; c < r.num_cols(); ++c) {
    if (static_cast<int>(c) == r1 || static_cast<int>(c) == r2) continue;
    out.mutable_col(pos++).AppendGather(r.col(c), ri.data(), ri.size());
  }
  // 1.T1, 1.T2, 2.T1, 2.T2, then the overlap as T1/T2 — the exact value
  // order EvalProductT pushes.
  auto fill = [&](auto&& point) {
    ColumnVec& dst = out.mutable_col(pos++);
    dst.Reserve(li.size());
    for (size_t k = 0; k < li.size(); ++k) dst.AppendInt64(point(k));
  };
  fill([&](size_t k) { return lb[li[k]]; });
  fill([&](size_t k) { return le[li[k]]; });
  fill([&](size_t k) { return rb[ri[k]]; });
  fill([&](size_t k) { return re[ri[k]]; });
  fill([&](size_t k) { return std::max(lb[li[k]], rb[ri[k]]); });
  fill([&](size_t k) { return std::min(le[li[k]], re[ri[k]]); });
  out.CommitRows(li.size());
  return out;
}

// Emits one output row per (source row, period) pair, in pair order: every
// column is gathered from `in` except T1/T2, which carry the pair's period —
// the columnar form of "copy the tuple, replace its period in place".
ColumnTable EmitWithPeriods(const ColumnTable& in,
                            const std::vector<uint32_t>& rows,
                            const std::vector<Period>& periods) {
  ColumnTable out(in.schema());
  int t1 = in.t1_index(), t2 = in.t2_index();
  for (size_t c = 0; c < in.num_cols(); ++c) {
    ColumnVec& dst = out.mutable_col(c);
    if (static_cast<int>(c) == t1) {
      dst.Reserve(periods.size());
      for (const Period& p : periods) dst.AppendInt64(p.begin);
    } else if (static_cast<int>(c) == t2) {
      dst.Reserve(periods.size());
      for (const Period& p : periods) dst.AppendInt64(p.end);
    } else {
      dst.AppendGather(in.col(c), rows.data(), rows.size());
    }
  }
  out.CommitRows(rows.size());
  return out;
}

ColumnTable VecDifferenceT(const ColumnTable& l, const ColumnTable& r) {
  // The endpoint-sweep algorithm of EvalDifferenceT, verbatim, over one
  // hash-keyed class table. Class iteration order is semantically inert:
  // fragments are recorded per left row and emitted in left-row order.
  struct ClassData {
    std::vector<uint32_t> left_index;
    std::vector<Period> left_period;
    std::vector<Period> right_period;
  };
  std::unordered_map<RowRef, uint32_t, RowRefHash, ClassRefEq> class_of;
  class_of.reserve(l.rows());
  std::vector<ClassData> classes;
  for (uint32_t i = 0; i < l.rows(); ++i) {
    auto [it, inserted] =
        class_of.try_emplace(ClassRow(l, i),
                             static_cast<uint32_t>(classes.size()));
    if (inserted) classes.emplace_back();
    ClassData& cd = classes[it->second];
    cd.left_index.push_back(i);
    cd.left_period.push_back(l.RowPeriod(i));
  }
  for (uint32_t j = 0; j < r.rows(); ++j) {
    auto it = class_of.find(ClassRow(r, j));
    if (it == class_of.end()) continue;  // nothing to cancel
    classes[it->second].right_period.push_back(r.RowPeriod(j));
  }

  std::vector<std::vector<Period>> fragments(l.rows());
  for (ClassData& cd : classes) {
    if (cd.right_period.empty()) {
      for (size_t k = 0; k < cd.left_index.size(); ++k) {
        fragments[cd.left_index[k]].push_back(cd.left_period[k]);
      }
      continue;
    }
    std::vector<TimePoint> cuts;
    for (const Period& p : cd.left_period) {
      cuts.push_back(p.begin);
      cuts.push_back(p.end);
    }
    for (const Period& p : cd.right_period) {
      cuts.push_back(p.begin);
      cuts.push_back(p.end);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      Period elem(cuts[c], cuts[c + 1]);
      int64_t right_cover = 0;
      for (const Period& p : cd.right_period) {
        if (p.Contains(elem)) ++right_cover;
      }
      int64_t budget = -right_cover;
      for (size_t k = 0; k < cd.left_index.size(); ++k) {
        if (!cd.left_period[k].Contains(elem)) continue;
        ++budget;
        if (budget > 0) {
          std::vector<Period>& fr = fragments[cd.left_index[k]];
          if (!fr.empty() && fr.back().end == elem.begin) {
            fr.back().end = elem.end;
          } else {
            fr.push_back(elem);
          }
        }
      }
    }
  }

  std::vector<uint32_t> rows;
  std::vector<Period> periods;
  for (uint32_t i = 0; i < l.rows(); ++i) {
    for (const Period& p : fragments[i]) {
      rows.push_back(i);
      periods.push_back(p);
    }
  }
  return EmitWithPeriods(l, rows, periods);
}

ColumnTable VecUnionT(const ColumnTable& l, const ColumnTable& r) {
  ColumnTable extra = VecDifferenceT(r, l);
  ColumnTable out(l.schema());
  out.AppendRange(l, 0, l.rows());
  out.AppendRange(extra, 0, extra.rows());
  return out;
}

ColumnTable VecRdupT(const ColumnTable& in) {
  std::unordered_map<RowRef, uint32_t, RowRefHash, ClassRefEq> class_of;
  class_of.reserve(in.rows());
  std::vector<std::vector<Period>> covered;
  std::vector<uint32_t> rows;
  std::vector<Period> periods;
  for (uint32_t i = 0; i < in.rows(); ++i) {
    auto [it, inserted] =
        class_of.try_emplace(ClassRow(in, i),
                             static_cast<uint32_t>(covered.size()));
    if (inserted) covered.emplace_back();
    std::vector<Period>& cov = covered[it->second];
    Period p = in.RowPeriod(i);
    for (const Period& frag : SubtractAll(p, cov)) {
      rows.push_back(i);
      periods.push_back(frag);
    }
    cov.push_back(p);
    cov = NormalizePeriods(std::move(cov));
  }
  return EmitWithPeriods(in, rows, periods);
}

ColumnTable VecCoalesce(const ColumnTable& in) {
  // EvalCoalesce's greedy adjacency merge, verbatim: per class, the head
  // absorbs the first later adjacent fragment until a fixpoint. Classes
  // interact with nothing, so a hash class table with insertion-ordered
  // member lists reproduces the ordered-map version exactly.
  size_t n = in.rows();
  std::vector<bool> consumed(n, false);
  std::vector<Period> period(n);
  std::unordered_map<RowRef, uint32_t, RowRefHash, ClassRefEq> class_of;
  class_of.reserve(n);
  // Class member lists as intrusive linked lists (head/tail per class, one
  // next[] array): most classes are tiny, and per-class vectors would cost
  // one allocation each at million-row scale.
  std::vector<uint32_t> class_head, class_tail;
  std::vector<int32_t> next_in_class(n, -1);
  for (uint32_t i = 0; i < n; ++i) {
    period[i] = in.RowPeriod(i);
    auto [it, inserted] =
        class_of.try_emplace(ClassRow(in, i),
                             static_cast<uint32_t>(class_head.size()));
    if (inserted) {
      class_head.push_back(i);
      class_tail.push_back(i);
    } else {
      next_in_class[class_tail[it->second]] = static_cast<int32_t>(i);
      class_tail[it->second] = i;
    }
  }
  std::vector<uint32_t> idxs;  // per-class scratch, reused
  for (uint32_t cid = 0; cid < class_head.size(); ++cid) {
    idxs.clear();
    for (int32_t j = static_cast<int32_t>(class_head[cid]); j >= 0;
         j = next_in_class[j]) {
      idxs.push_back(static_cast<uint32_t>(j));
    }
    for (size_t a = 0; a < idxs.size(); ++a) {
      uint32_t head = idxs[a];
      if (consumed[head]) continue;
      bool changed = true;
      while (changed) {
        changed = false;
        for (size_t b = a + 1; b < idxs.size(); ++b) {
          uint32_t j = idxs[b];
          if (consumed[j]) continue;
          if (period[head].Adjacent(period[j])) {
            period[head] = period[head].Merge(period[j]);
            consumed[j] = true;
            changed = true;
            break;  // restart: the grown period may meet earlier fragments
          }
        }
      }
    }
  }
  std::vector<uint32_t> rows;
  std::vector<Period> periods;
  for (uint32_t i = 0; i < n; ++i) {
    if (consumed[i]) continue;
    rows.push_back(i);
    periods.push_back(period[i]);
  }
  return EmitWithPeriods(in, rows, periods);
}

// ---- Aggregation ----------------------------------------------------------

// AggState of exec/eval_ops.cc over cells: same accumulation order, same
// min/max update rule (strict comparisons keep the first extremum), same
// Finish typing.
struct VecAggState {
  int64_t count = 0;
  double sum = 0.0;
  bool has_minmax = false;
  Value min, max;
  int64_t non_null = 0;

  void Add(const CellRef& v) {
    ++count;
    if (v.is_null()) return;
    ++non_null;
    if (v.IsNumeric()) sum += v.Numeric();
    if (!has_minmax) {
      min = v.ToValue();
      max = min;
      has_minmax = true;
    } else {
      if (CellRef::Compare(v, CellRef::Of(min)) < 0) min = v.ToValue();
      if (CellRef::Compare(CellRef::Of(max), v) < 0) max = v.ToValue();
    }
  }

  Value Finish(AggFunc f, ValueType input_type) const {
    switch (f) {
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (non_null == 0) return Value::Null();
        if (input_type == ValueType::kDouble) return Value::Double(sum);
        return Value::Int(static_cast<int64_t>(sum));
      case AggFunc::kAvg:
        if (non_null == 0) return Value::Null();
        return Value::Double(sum / static_cast<double>(non_null));
      case AggFunc::kMin:
        return has_minmax ? min : Value::Null();
      case AggFunc::kMax:
        return has_minmax ? max : Value::Null();
    }
    return Value::Null();
  }
};

/// Resolves group-by / aggregate attribute positions with the reference's
/// exact error messages.
Status ResolveAggColumns(const Schema& schema,
                         const std::vector<std::string>& group_by,
                         const std::vector<AggSpec>& aggs,
                         std::vector<int>* group_idx,
                         std::vector<int>* agg_idx,
                         std::vector<ValueType>* agg_type) {
  for (const std::string& g : group_by) {
    int idx = schema.IndexOf(g);
    if (idx < 0) return Status::InvalidArgument("unknown group attr " + g);
    group_idx->push_back(idx);
  }
  for (const AggSpec& a : aggs) {
    if (a.func == AggFunc::kCount && a.attr.empty()) {
      agg_idx->push_back(-1);
      agg_type->push_back(ValueType::kInt);
      continue;
    }
    int idx = schema.IndexOf(a.attr);
    if (idx < 0) return Status::InvalidArgument("unknown agg attr " + a.attr);
    agg_idx->push_back(idx);
    agg_type->push_back(schema.attr(static_cast<size_t>(idx)).type);
  }
  return Status::OK();
}

// Hash/equality over a row's group-key cells only.
struct GroupTable {
  const ColumnTable& in;
  const std::vector<int>& group_idx;

  uint64_t HashRow(uint32_t row) const {
    // Group keys compare with CellRef::Compare (cross-type numeric
    // equality), so hash with the Compare-consistent ClassHash.
    uint64_t seed = 0x51ab1e5;
    for (int gi : group_idx) {
      uint64_t h = in.col(static_cast<size_t>(gi)).At(row).ClassHash();
      seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
    }
    return seed;
  }
  bool RowsEqual(uint32_t a, uint32_t b) const {
    for (int gi : group_idx) {
      const ColumnVec& c = in.col(static_cast<size_t>(gi));
      if (CellRef::Compare(c.At(a), c.At(b)) != 0) return false;
    }
    return true;
  }
};

struct GroupKey {
  uint32_t row;
  uint64_t hash;
};
struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const { return k.hash; }
};
struct GroupKeyEq {
  const GroupTable* gt;
  bool operator()(const GroupKey& a, const GroupKey& b) const {
    return a.hash == b.hash && gt->RowsEqual(a.row, b.row);
  }
};

Result<ColumnTable> VecAggregate(const ColumnTable& in,
                                 const std::vector<std::string>& group_by,
                                 const std::vector<AggSpec>& aggs,
                                 const Schema& out_schema) {
  std::vector<int> group_idx, agg_idx;
  std::vector<ValueType> agg_type;
  TQP_RETURN_IF_ERROR(ResolveAggColumns(in.schema(), group_by, aggs,
                                        &group_idx, &agg_idx, &agg_type));
  GroupTable gt{in, group_idx};
  std::unordered_map<GroupKey, uint32_t, GroupKeyHash, GroupKeyEq> group_of(
      16, GroupKeyHash{}, GroupKeyEq{&gt});
  std::vector<uint32_t> first_row;  // groups in first-occurrence order
  std::vector<std::vector<VecAggState>> states;
  for (uint32_t i = 0; i < in.rows(); ++i) {
    auto [it, inserted] = group_of.try_emplace(
        GroupKey{i, gt.HashRow(i)}, static_cast<uint32_t>(first_row.size()));
    if (inserted) {
      first_row.push_back(i);
      states.emplace_back(aggs.size());
    }
    std::vector<VecAggState>& st = states[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      CellRef cell;
      if (agg_idx[a] < 0) {
        cell.type = ValueType::kInt;
        cell.i = 1;
      } else {
        cell = in.col(static_cast<size_t>(agg_idx[a])).At(i);
      }
      st[a].Add(cell);
    }
  }

  ColumnTable out(out_schema);
  size_t pos = 0;
  for (int gi : group_idx) {
    ColumnVec& dst = out.mutable_col(pos++);
    for (uint32_t g : first_row) {
      dst.AppendFrom(in.col(static_cast<size_t>(gi)), g);
    }
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    ColumnVec& dst = out.mutable_col(pos++);
    for (size_t g = 0; g < first_row.size(); ++g) {
      dst.AppendValue(states[g][a].Finish(aggs[a].func, agg_type[a]));
    }
  }
  out.CommitRows(first_row.size());
  return out;
}

Result<ColumnTable> VecAggregateT(const ColumnTable& in,
                                  const std::vector<std::string>& group_by,
                                  const std::vector<AggSpec>& aggs,
                                  const Schema& out_schema) {
  std::vector<int> group_idx, agg_idx;
  std::vector<ValueType> agg_type;
  TQP_RETURN_IF_ERROR(ResolveAggColumns(in.schema(), group_by, aggs,
                                        &group_idx, &agg_idx, &agg_type));
  GroupTable gt{in, group_idx};
  std::unordered_map<GroupKey, uint32_t, GroupKeyHash, GroupKeyEq> group_of(
      16, GroupKeyHash{}, GroupKeyEq{&gt});
  std::vector<uint32_t> first_row;
  std::vector<std::vector<uint32_t>> members;
  for (uint32_t i = 0; i < in.rows(); ++i) {
    auto [it, inserted] = group_of.try_emplace(
        GroupKey{i, gt.HashRow(i)}, static_cast<uint32_t>(first_row.size()));
    if (inserted) {
      first_row.push_back(i);
      members.emplace_back();
    }
    members[it->second].push_back(i);
  }

  std::vector<Period> row_period(in.rows());
  for (uint32_t i = 0; i < in.rows(); ++i) row_period[i] = in.RowPeriod(i);

  ColumnTable out(out_schema);
  const size_t key_cols = group_idx.size();
  for (size_t g = 0; g < first_row.size(); ++g) {
    std::vector<TimePoint> cuts;
    for (uint32_t m : members[g]) {
      cuts.push_back(row_period[m].begin);
      cuts.push_back(row_period[m].end);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    std::vector<Value> prev_aggs;
    Period open;
    bool has_open = false;
    auto flush = [&]() {
      if (!has_open) return;
      size_t pos = 0;
      for (size_t c = 0; c < key_cols; ++c) {
        out.mutable_col(pos++).AppendFrom(
            in.col(static_cast<size_t>(group_idx[c])), first_row[g]);
      }
      for (const Value& v : prev_aggs) {
        out.mutable_col(pos++).AppendValue(v);
      }
      out.mutable_col(pos++).AppendValue(Value::Time(open.begin));
      out.mutable_col(pos++).AppendValue(Value::Time(open.end));
      out.CommitRows(1);
      has_open = false;
    };
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      Period elem(cuts[c], cuts[c + 1]);
      std::vector<VecAggState> st(aggs.size());
      int64_t covering = 0;
      for (uint32_t m : members[g]) {
        if (!row_period[m].Contains(elem)) continue;
        ++covering;
        for (size_t a = 0; a < aggs.size(); ++a) {
          CellRef cell;
          if (agg_idx[a] < 0) {
            cell.type = ValueType::kInt;
            cell.i = 1;
          } else {
            cell = in.col(static_cast<size_t>(agg_idx[a])).At(m);
          }
          st[a].Add(cell);
        }
      }
      if (covering == 0) {
        flush();
        continue;
      }
      std::vector<Value> cur;
      for (size_t a = 0; a < aggs.size(); ++a) {
        cur.push_back(st[a].Finish(aggs[a].func, agg_type[a]));
      }
      if (has_open && cur == prev_aggs && open.end == elem.begin) {
        open.end = elem.end;
      } else {
        flush();
        open = elem;
        prev_aggs = std::move(cur);
        has_open = true;
      }
    }
    flush();
  }
  return out;
}

// ---- DBMS order scramble --------------------------------------------------

// The columnar twin of evaluator.cc's ScrambleOrder: the same seeded
// hash-key stable sort over row indices yields the same permutation.
ColumnTable VecScramble(const ColumnTable& in, uint64_t seed) {
  std::vector<uint64_t> key(in.rows());
  for (size_t i = 0; i < in.rows(); ++i) {
    uint64_t h = in.RowHash(i) ^ seed;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    key[i] = h;
  }
  std::vector<uint32_t> order(in.rows());
  for (uint32_t i = 0; i < in.rows(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     if (key[a] != key[b]) return key[a] < key[b];
                     return ColumnTable::RowCompare(in, a, in, b) < 0;
                   });
  ColumnTable out(in.schema());
  out.AppendGather(in, order);
  return out;
}

// ---- The driver -----------------------------------------------------------

struct VecTreeExecutor {
  const AnnotatedPlan& ann;
  const EngineConfig& config;
  ExecStats* stats;
  const VexecOptions& options;

  Result<ColumnTable> Eval(const PlanPtr& node) {
    const NodeInfo& info = ann.info(node.get());
    std::vector<ColumnTable> inputs;
    for (const PlanPtr& c : node->children()) {
      TQP_ASSIGN_OR_RETURN(r, Eval(c));
      inputs.push_back(std::move(r));
    }
    double in1 = inputs.empty() ? 0.0 : static_cast<double>(inputs[0].rows());
    double in2 =
        inputs.size() < 2 ? 0.0 : static_cast<double>(inputs[1].rows());
    TQP_ASSIGN_OR_RETURN(result, Apply(node, info, inputs));

    if (stats != nullptr) {
      // The same simulated cost accounting as the reference evaluator...
      ++stats->op_counts[OpKindName(node->kind())];
      stats->tuples_produced += static_cast<int64_t>(result.rows());
      if (node->kind() == OpKind::kScan) {
        in1 = static_cast<double>(result.rows());
      }
      double units = OpWorkUnits(node->kind(), in1, in2,
                                 static_cast<double>(result.rows()));
      if (node->kind() == OpKind::kTransferS ||
          node->kind() == OpKind::kTransferD) {
        stats->tuples_transferred += static_cast<int64_t>(in1);
        stats->stratum_work += in1 * config.transfer_cost_per_tuple;
      } else if (info.site == Site::kDbms) {
        double penalty =
            IsTemporalOp(node->kind()) ? config.dbms_temporal_penalty : 1.0;
        stats->dbms_work += units * penalty;
      } else {
        stats->stratum_work += units * config.stratum_cpu_factor;
      }
      // ...plus the batch-engine counters: batches consumed (input rows, or
      // the scanned rows for leaves, per batch_size) and one columnar
      // materialization per operator output.
      size_t consumed = node->kind() == OpKind::kScan
                            ? result.rows()
                            : static_cast<size_t>(in1 + in2);
      stats->vec_batches += static_cast<int64_t>(
          (consumed + options.batch_size - 1) / options.batch_size);
      stats->vec_rows += static_cast<int64_t>(result.rows());
      ++stats->vec_materializations;
    }

    if (config.dbms_scrambles_order && info.site == Site::kDbms &&
        node->kind() != OpKind::kSort && node->kind() != OpKind::kScan &&
        node->kind() != OpKind::kTransferD) {
      result = VecScramble(result, config.scramble_seed);
      if (stats != nullptr) ++stats->vec_materializations;
    }
    return result;
  }

  Result<ColumnTable> Apply(const PlanPtr& node, const NodeInfo& info,
                            std::vector<ColumnTable>& in) {
    switch (node->kind()) {
      case OpKind::kScan: {
        const CatalogEntry* e = ann.catalog().Find(node->rel_name());
        if (e == nullptr) return Status::NotFound(node->rel_name());
        return VecScan(*e);
      }
      case OpKind::kSelect:
        return VecSelect(in[0], node->predicate(), options.batch_size);
      case OpKind::kProject:
        return VecProject(in[0], node->projections(), info.schema,
                          options.batch_size);
      case OpKind::kUnionAll:
        return VecUnionAll(in[0], in[1], info.schema);
      case OpKind::kUnion:
        return VecUnion(in[0], in[1], info.schema);
      case OpKind::kProduct:
        return VecProduct(in[0], in[1], info.schema);
      case OpKind::kDifference:
        return VecDifference(in[0], in[1]);
      case OpKind::kAggregate:
        return VecAggregate(in[0], node->group_by(), node->aggregates(),
                            info.schema);
      case OpKind::kRdup:
        return VecRdup(in[0], info.schema);
      case OpKind::kProductT:
        return VecProductT(in[0], in[1], info.schema);
      case OpKind::kDifferenceT:
        return VecDifferenceT(in[0], in[1]);
      case OpKind::kAggregateT:
        return VecAggregateT(in[0], node->group_by(), node->aggregates(),
                             info.schema);
      case OpKind::kRdupT:
        return VecRdupT(in[0]);
      case OpKind::kUnionT:
        return VecUnionT(in[0], in[1]);
      case OpKind::kSort:
        return VecSort(in[0], node->sort_spec());
      case OpKind::kCoalesce:
        return VecCoalesce(in[0]);
      case OpKind::kTransferS:
      case OpKind::kTransferD:
        return std::move(in[0]);
    }
    return Status::Error("unreachable operator kind");
  }
};

}  // namespace

Result<Relation> ExecuteVectorized(const AnnotatedPlan& plan,
                                   const EngineConfig& config,
                                   ExecStats* stats,
                                   const VexecOptions& options) {
  VexecOptions opts = options;
  if (opts.batch_size == 0) opts.batch_size = 1;
  VecTreeExecutor ex{plan, config, stats, opts};
  TQP_ASSIGN_OR_RETURN(table, ex.Eval(plan.plan()));
  Relation out = table.ToRelation();
  out.set_order(plan.root_info().order);
  return out;
}

Result<Relation> ExecuteVectorizedPlan(const PlanPtr& plan,
                                       const Catalog& catalog,
                                       const EngineConfig& config,
                                       ExecStats* stats,
                                       const VexecOptions& options) {
  TQP_ASSIGN_OR_RETURN(
      ann, AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset()));
  return ExecuteVectorized(ann, config, stats, options);
}

}  // namespace tqp
