// Vectorized operator kernels and the plan driver.
//
// Every kernel is the columnar transcription of the corresponding Eval* in
// exec/eval_ops.cc: the same algorithm over row indices and typed columns
// instead of per-tuple Value vectors, so the produced list is identical —
// including which occurrence survives duplicate elimination, difference
// fragment order, and rdupT's in-place period replacement. Hash-based
// duplicate/class lookups reuse the exact Tuple::Hash / Tuple::Compare
// semantics through ColumnTable::RowHash / RowCompare; wherever the
// reference uses an ordered map whose iteration order is semantically inert
// (per-class temporal sweeps, group tables that record first-occurrence
// order separately), the kernels use open hashing instead.
#include "vexec/vexec.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "backend/backend.h"
#include "backend/simulated_backend.h"
#include "core/profile.h"
#include "core/spill.h"
#include "core/task_pool.h"
#include "core/trace.h"
#include "exec/result_cache.h"
#include "vexec/vexec_internal.h"

namespace tqp {

namespace {

using vexec::EvalColumn;
using vexec::VecEval;

// ---- Row-identity hashing (full-tuple equality) ---------------------------

struct RowRef {
  const ColumnTable* t;
  uint32_t row;
  uint64_t hash;  // ColumnTable::RowHash(row)
};

struct RowRefHash {
  size_t operator()(const RowRef& k) const { return k.hash; }
};

struct RowRefEq {
  bool operator()(const RowRef& a, const RowRef& b) const {
    if (a.hash != b.hash) return false;  // hash is a function of the row
    return ColumnTable::RowEquals(*a.t, a.row, *b.t, b.row);
  }
};

// ---- Value-equivalence-class hashing (non-time attributes) ----------------

struct ClassRefEq {
  bool operator()(const RowRef& a, const RowRef& b) const {
    if (a.hash != b.hash) return false;
    return ColumnTable::RowCompareNonTemporal(*a.t, a.row, *b.t, b.row) == 0;
  }
};

// ---- Morsel runtime -------------------------------------------------------

struct SpillCounters {
  int64_t bytes = 0;
  int64_t runs = 0;
};

// The execution context threaded through every kernel: the work-stealing
// pool (null = serial), the morsel granularity, and the spill budget.
// Parallel loops split row ranges into morsels whose results are stitched
// back in input order, so kernel output never depends on the thread count —
// with one pool worker or pool == nullptr, every loop degenerates to the
// single-range serial call.
struct VexecRuntime {
  WorkStealingPool* pool = nullptr;
  size_t morsel_rows = 32768;
  uint64_t memory_budget = 0;
  SpillCounters spill;
  /// Per-query span recorder; null = untraced (one pointer test per
  /// parallel loop, then one RAII span per *morsel*, never per row).
  Tracer* tracer = nullptr;

  size_t Workers() const { return pool == nullptr ? 1 : pool->workers(); }

  size_t NumMorsels(size_t count) const {
    size_t g = morsel_rows == 0 ? 1 : morsel_rows;
    return (count + g - 1) / g;
  }

  /// Runs body(begin, end) over [0, count): one call covering everything
  /// when serial, one call per morsel (any thread, any order) otherwise.
  /// Serial and parallel runs see the same begin-aligned morsel boundaries
  /// except for the single-call degenerate cases, so bodies must be
  /// per-row pure (they are: every caller writes row-indexed slots or
  /// per-morsel fragment lists).
  template <typename Body>
  void ForRows(size_t count, const Body& body) const {
    if (pool == nullptr || NumMorsels(count) <= 1) {
      if (count > 0) body(0, count);
      return;
    }
    if (tracer != nullptr) {
      pool->ParallelFor(count, morsel_rows, [&](size_t b, size_t e) {
        TraceSpan span(tracer, "vexec", "morsel");
        span.Arg("rows", static_cast<uint64_t>(e - b));
        body(b, e);
      });
      return;
    }
    pool->ParallelFor(count, morsel_rows, body);
  }

  /// Runs body(i) for i in [0, n): independent coarse tasks (one output
  /// column, one sort run), one morsel each.
  template <typename Body>
  void ForTasks(size_t n, const Body& body) const {
    if (pool == nullptr || n <= 1) {
      for (size_t i = 0; i < n; ++i) body(i);
      return;
    }
    pool->ParallelFor(n, 1, [&](size_t b, size_t e) {
      TraceSpan span(tracer, "vexec", "task");
      for (size_t i = b; i < e; ++i) body(i);
    });
  }

  /// Runs body(begin, end) over [0, n) work units (equivalence classes):
  /// the whole range at once when serial — preserving the scratch-reuse
  /// serial code path — and grain-sized ranges otherwise.
  template <typename Body>
  void ForUnits(size_t n, const Body& body) const {
    size_t grain = std::max<size_t>(1, n / (Workers() * 8));
    if (pool == nullptr || n <= grain) {
      if (n > 0) body(0, n);
      return;
    }
    pool->ParallelFor(n, grain, [&](size_t b, size_t e) {
      TraceSpan span(tracer, "vexec", "units");
      if (span.active()) span.Arg("units", static_cast<uint64_t>(e - b));
      body(b, e);
    });
  }
};

// Concatenates per-morsel row lists in morsel order — the deterministic
// stitch step of every parallel filter-style kernel.
std::vector<uint32_t> ConcatFrags(
    const std::vector<std::vector<uint32_t>>& per) {
  size_t total = 0;
  for (const auto& v : per) total += v.size();
  std::vector<uint32_t> out;
  out.reserve(total);
  for (const auto& v : per) out.insert(out.end(), v.begin(), v.end());
  return out;
}

// Gathers `rows` of `src` into a fresh table, one column per task.
ColumnTable GatherTable(const ColumnTable& src, const Schema& out_schema,
                        const std::vector<uint32_t>& rows,
                        const VexecRuntime& rt) {
  ColumnTable out(out_schema);
  rt.ForTasks(src.num_cols(), [&](size_t c) {
    out.mutable_col(c).AppendGather(src.col(c), rows.data(), rows.size());
  });
  out.CommitRows(rows.size());
  return out;
}

// Per-row hashes (RowHash, or RowHashNonTemporal for value-equivalence
// classes), computed morsel-parallel.
std::vector<uint64_t> RowHashes(const ColumnTable& t, bool non_temporal,
                                const VexecRuntime& rt) {
  std::vector<uint64_t> h(t.rows());
  rt.ForRows(t.rows(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      h[i] = non_temporal ? t.RowHashNonTemporal(i) : t.RowHash(i);
    }
  });
  return h;
}

// Stable sort of the index vector [0, n) by `less`. Parallel plan: sort a
// power-of-two number of contiguous runs independently, then merge adjacent
// runs pairwise with std::inplace_merge — itself stable and left-biased —
// which reproduces std::stable_sort's result exactly for any run count
// (runs hold index-ascending row ranges, so ties resolve left-run-first =
// lower-index-first at every level).
template <typename Less>
std::vector<uint32_t> SortIndices(size_t n, const Less& less,
                                  const VexecRuntime& rt) {
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  size_t workers = rt.Workers();
  if (workers <= 1 || n < 8192) {
    std::stable_sort(order.begin(), order.end(), less);
    return order;
  }
  size_t runs = 1;
  while (runs < workers) runs <<= 1;
  std::vector<size_t> bound(runs + 1);
  for (size_t k = 0; k <= runs; ++k) bound[k] = k * n / runs;
  rt.ForTasks(runs, [&](size_t k) {
    std::stable_sort(order.begin() + bound[k], order.begin() + bound[k + 1],
                     less);
  });
  for (size_t width = 1; width < runs; width <<= 1) {
    size_t pairs = runs / (2 * width);
    rt.ForTasks(pairs, [&](size_t p) {
      size_t lo = bound[2 * width * p];
      size_t mid = bound[2 * width * p + width];
      size_t hi = bound[2 * width * p + 2 * width];
      std::inplace_merge(order.begin() + lo, order.begin() + mid,
                         order.begin() + hi, less);
    });
  }
  return order;
}

// ---- Spill helpers --------------------------------------------------------

bool ShouldSpill(const ColumnTable& t, const VexecRuntime& rt) {
  return rt.memory_budget > 0 && t.rows() > 1 &&
         t.ApproxBytes() > rt.memory_budget;
}

size_t SpillPartitionCount(uint64_t bytes, uint64_t budget) {
  uint64_t p = bytes / std::max<uint64_t>(1, budget / 2) + 1;
  return static_cast<size_t>(
      std::min<uint64_t>(256, std::max<uint64_t>(2, p)));
}

// Hash-partitions row records into a spill file: each record is the row's
// original index (u32) followed by its EncodeSpillRow payload. Records are
// buffered per partition and flushed in 64 KiB blocks; a partition reads
// back as the concatenation of its blocks, so its rows return in ascending
// original-row order — which is what lets the partitioned class/group
// algorithms reproduce the serial first-occurrence discipline.
class SpillPartitioner {
 public:
  explicit SpillPartitioner(size_t parts) : bufs_(parts), blocks_(parts) {}

  bool ok() const { return file_.ok(); }
  uint64_t bytes_written() const { return file_.bytes_written(); }
  size_t parts() const { return bufs_.size(); }

  void Add(size_t part, const ColumnTable& t, size_t row) {
    std::string& buf = bufs_[part];
    uint32_t idx = static_cast<uint32_t>(row);
    buf.append(reinterpret_cast<const char*>(&idx), sizeof(idx));
    EncodeSpillRow(t, row, &buf);
    if (buf.size() >= 64 * 1024) Flush(part);
  }

  void FlushAll() {
    for (size_t p = 0; p < bufs_.size(); ++p) Flush(p);
  }

  /// Decodes partition `p` into rows (as Values) plus their original
  /// indices, in ascending original order.
  void ReadPartition(size_t p, std::vector<uint32_t>* orig,
                     std::vector<std::vector<Value>>* rows) {
    orig->clear();
    rows->clear();
    size_t total = 0;
    for (const Block& b : blocks_[p]) total += b.bytes;
    std::string data(total, '\0');
    size_t at = 0;
    for (const Block& b : blocks_[p]) {
      file_.ReadAt(b.offset, &data[at], b.bytes);
      at += b.bytes;
    }
    const uint8_t* ptr = reinterpret_cast<const uint8_t*>(data.data());
    size_t avail = total;
    while (avail > 0) {
      TQP_CHECK(avail >= 4);
      uint32_t idx;
      std::memcpy(&idx, ptr, sizeof(idx));
      ptr += 4;
      avail -= 4;
      std::vector<Value> row;
      size_t used = DecodeSpillRow(ptr, avail, &row);
      TQP_CHECK(used != 0);
      ptr += used;
      avail -= used;
      orig->push_back(idx);
      rows->push_back(std::move(row));
    }
  }

 private:
  struct Block {
    uint64_t offset;
    size_t bytes;
  };

  void Flush(size_t p) {
    if (bufs_[p].empty()) return;
    uint64_t off = file_.Append(bufs_[p].data(), bufs_[p].size());
    blocks_[p].push_back(Block{off, bufs_[p].size()});
    bufs_[p].clear();
  }

  SpillFile file_;
  std::vector<std::string> bufs_;
  std::vector<std::vector<Block>> blocks_;
};

// Rebuilds a columnar table from decoded spill rows (one partition's worth).
ColumnTable TableFromRows(const Schema& schema,
                          const std::vector<std::vector<Value>>& rows) {
  ColumnTable t(schema);
  for (size_t c = 0; c < t.num_cols(); ++c) {
    ColumnVec& col = t.mutable_col(c);
    col.Reserve(rows.size());
    for (const std::vector<Value>& row : rows) col.AppendValue(row[c]);
  }
  t.CommitRows(rows.size());
  return t;
}

// ---- Kernels --------------------------------------------------------------

Result<ColumnTable> VecScan(const CatalogEntry& entry,
                            const VexecRuntime& rt) {
  if (rt.pool == nullptr) return ColumnTable::FromRelation(entry.data);
  // Column-parallel conversion: each task appends one column's cells in row
  // order — the same per-cell append sequence FromRelation performs.
  const Relation& r = entry.data;
  ColumnTable t(r.schema());
  rt.ForTasks(t.num_cols(), [&](size_t c) {
    ColumnVec& col = t.mutable_col(c);
    col.Reserve(r.size());
    for (size_t i = 0; i < r.size(); ++i) col.AppendValue(r.tuple(i).at(c));
  });
  t.CommitRows(r.size());
  return t;
}

// The columnar-to-row conversion of the root result, morsel-parallel:
// tuples are written into pre-sized slots, so the row order never depends
// on the thread count.
Relation VecToRelation(const ColumnTable& t, const VexecRuntime& rt) {
  if (rt.pool == nullptr) return t.ToRelation();
  std::vector<Tuple> tuples(t.rows());
  rt.ForRows(t.rows(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      std::vector<Value> vals;
      vals.reserve(t.num_cols());
      for (size_t c = 0; c < t.num_cols(); ++c) {
        vals.push_back(t.col(c).ValueAt(i));
      }
      tuples[i] = Tuple(std::move(vals));
    }
  });
  return Relation(t.schema(), std::move(tuples));
}

ColumnTable VecSelect(const ColumnTable& in, const ExprPtr& predicate,
                      size_t batch_size, const VexecRuntime& rt) {
  size_t grain = rt.morsel_rows == 0 ? 1 : rt.morsel_rows;
  std::vector<std::vector<uint32_t>> frags(
      std::max<size_t>(1, rt.NumMorsels(in.rows())));
  rt.ForRows(in.rows(), [&](size_t mb, size_t me) {
    std::vector<uint32_t>& keep = frags[mb / grain];
    for (size_t b = mb; b < me; b += batch_size) {
      size_t e = std::min(me, b + batch_size);
      EvalColumn ec = VecEval(predicate, in, b, e);
      for (uint32_t k = 0; k < e - b; ++k) {
        // EvalPredicate semantics: an erroring or NULL row is simply false.
        if (ec.ErrAt(k) != nullptr) continue;
        CellRef c = ec.col.At(k);
        if (c.is_null()) continue;
        if (c.Numeric() != 0) keep.push_back(static_cast<uint32_t>(b + k));
      }
    }
  });
  return GatherTable(in, in.schema(), ConcatFrags(frags), rt);
}

Result<ColumnTable> VecProject(const ColumnTable& in,
                               const std::vector<ProjItem>& items,
                               const Schema& out_schema, size_t batch_size,
                               const VexecRuntime& rt) {
  // The reference fails with the error of the first erroring row (and that
  // row's first erroring item): rows outermost, so an error at (row, item)
  // is superseded only by one at a strictly smaller row. Evaluate
  // column-at-a-time (items outermost, serial), keep the minimum error row,
  // and bound every later item to rows below it: a strict `<` update means
  // the earliest item to error on the final minimum row wins, exactly the
  // reference's (row, item) order. Within an item the rows are evaluated
  // morsel-parallel — VecEval is per-row pure, so evaluating rows the
  // serial bound would have skipped changes nothing observable — and the
  // per-morsel column pieces are stitched back in morsel order.
  size_t err_row = static_cast<size_t>(-1);
  std::string err_msg;
  std::mutex err_mu;
  size_t grain = rt.morsel_rows == 0 ? 1 : rt.morsel_rows;
  std::vector<ColumnVec> cols(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    size_t limit = std::min(in.rows(), err_row);
    std::vector<ColumnVec> pieces(std::max<size_t>(1, rt.NumMorsels(limit)));
    rt.ForRows(limit, [&](size_t mb, size_t me) {
      ColumnVec& piece = pieces[mb / grain];
      for (size_t b = mb; b < me; b += batch_size) {
        size_t e = std::min(me, b + batch_size);
        EvalColumn ec = VecEval(items[i].expr, in, b, e);
        if (!ec.errs.empty()) {
          std::lock_guard<std::mutex> lock(err_mu);
          for (const auto& [k, msg] : ec.errs) {
            if (b + k < err_row) {
              err_row = b + k;
              err_msg = msg;
            }
          }
        }
        piece.AppendRangeFrom(ec.col, 0, e - b);
      }
    });
    for (ColumnVec& piece : pieces) {
      cols[i].AppendRangeFrom(piece, 0, piece.size());
    }
  }
  if (err_row != static_cast<size_t>(-1)) return Status::Error(err_msg);
  ColumnTable out(out_schema);
  for (size_t i = 0; i < cols.size(); ++i) {
    out.mutable_col(i) = std::move(cols[i]);
  }
  out.CommitRows(in.rows());
  return out;
}

ColumnTable VecUnionAll(const ColumnTable& l, const ColumnTable& r,
                        const Schema& out_schema, const VexecRuntime& rt) {
  ColumnTable out(out_schema);
  rt.ForTasks(out.num_cols(), [&](size_t c) {
    out.mutable_col(c).AppendRangeFrom(l.col(c), 0, l.rows());
    out.mutable_col(c).AppendRangeFrom(r.col(c), 0, r.rows());
  });
  out.CommitRows(l.rows() + r.rows());
  return out;
}

ColumnTable VecUnion(const ColumnTable& l, const ColumnTable& r,
                     const Schema& out_schema, const VexecRuntime& rt) {
  // Hashes morsel-parallel; the multiplicity bookkeeping stays serial (it
  // is inherently a running count in row order).
  std::vector<uint64_t> lh = RowHashes(l, false, rt);
  std::vector<uint64_t> rh = RowHashes(r, false, rt);
  std::unordered_map<RowRef, int64_t, RowRefHash, RowRefEq> left_count;
  left_count.reserve(l.rows());
  for (uint32_t i = 0; i < l.rows(); ++i) ++left_count[RowRef{&l, i, lh[i]}];
  std::unordered_map<RowRef, int64_t, RowRefHash, RowRefEq> right_seen;
  std::vector<uint32_t> extra;
  for (uint32_t j = 0; j < r.rows(); ++j) {
    RowRef key{&r, j, rh[j]};
    int64_t seen = ++right_seen[key];
    auto it = left_count.find(key);
    int64_t in_left = it == left_count.end() ? 0 : it->second;
    if (seen > in_left) extra.push_back(j);
  }
  ColumnTable out(out_schema);
  rt.ForTasks(out.num_cols(), [&](size_t c) {
    out.mutable_col(c).AppendRangeFrom(l.col(c), 0, l.rows());
    out.mutable_col(c).AppendGather(r.col(c), extra.data(), extra.size());
  });
  out.CommitRows(l.rows() + extra.size());
  return out;
}

ColumnTable VecProduct(const ColumnTable& l, const ColumnTable& r,
                       const Schema& out_schema, const VexecRuntime& rt) {
  // Left-major pair order, generated column-wise (one output column per
  // task): left columns repeat each cell |r| times, right columns tile |l|
  // times.
  ColumnTable out(out_schema);
  size_t lc = l.num_cols();
  rt.ForTasks(out.num_cols(), [&](size_t pos) {
    ColumnVec& dst = out.mutable_col(pos);
    dst.Reserve(l.rows() * r.rows());
    if (pos < lc) {
      for (size_t i = 0; i < l.rows(); ++i) {
        for (size_t j = 0; j < r.rows(); ++j) dst.AppendFrom(l.col(pos), i);
      }
    } else {
      for (size_t i = 0; i < l.rows(); ++i) {
        dst.AppendRangeFrom(r.col(pos - lc), 0, r.rows());
      }
    }
  });
  out.CommitRows(l.rows() * r.rows());
  return out;
}

ColumnTable VecDifference(const ColumnTable& l, const ColumnTable& r,
                          const VexecRuntime& rt) {
  std::vector<uint64_t> lh = RowHashes(l, false, rt);
  std::vector<uint64_t> rh = RowHashes(r, false, rt);
  std::unordered_map<RowRef, int64_t, RowRefHash, RowRefEq> cancel;
  cancel.reserve(r.rows());
  for (uint32_t j = 0; j < r.rows(); ++j) ++cancel[RowRef{&r, j, rh[j]}];
  std::vector<uint32_t> keep;
  for (uint32_t i = 0; i < l.rows(); ++i) {
    auto it = cancel.find(RowRef{&l, i, lh[i]});
    if (it != cancel.end() && it->second > 0) {
      --it->second;
      continue;
    }
    keep.push_back(i);
  }
  return GatherTable(l, l.schema(), keep, rt);
}

ColumnTable VecRdup(const ColumnTable& in, const Schema& out_schema,
                    VexecRuntime& rt) {
  std::vector<uint64_t> h = RowHashes(in, false, rt);
  std::vector<uint32_t> keep;
  bool done = false;
  if (ShouldSpill(in, rt)) {
    // Grace-partitioned rdup: rows hash-partition to a spill file, each
    // partition deduplicates independently (equal rows share a hash, hence
    // a partition), and the survivors merge ascending — exactly the serial
    // first-occurrence set.
    TraceSpan spill_span(rt.tracer, "vexec", "spill_rdup");
    size_t parts = SpillPartitionCount(in.ApproxBytes(), rt.memory_budget);
    SpillPartitioner sp(parts);
    if (sp.ok()) {
      for (size_t i = 0; i < in.rows(); ++i) sp.Add(h[i] % parts, in, i);
      sp.FlushAll();
      rt.spill.bytes += static_cast<int64_t>(sp.bytes_written());
      rt.spill.runs += static_cast<int64_t>(parts);
      std::vector<uint32_t> orig;
      std::vector<std::vector<Value>> vals;
      for (size_t p = 0; p < parts; ++p) {
        sp.ReadPartition(p, &orig, &vals);
        ColumnTable part = TableFromRows(in.schema(), vals);
        std::unordered_set<RowRef, RowRefHash, RowRefEq> seen;
        seen.reserve(part.rows());
        for (uint32_t k = 0; k < part.rows(); ++k) {
          if (seen.insert(RowRef{&part, k, h[orig[k]]}).second) {
            keep.push_back(orig[k]);
          }
        }
      }
      std::sort(keep.begin(), keep.end());
      done = true;
    }
  }
  if (!done) {
    std::unordered_set<RowRef, RowRefHash, RowRefEq> seen;
    seen.reserve(in.rows());
    for (uint32_t i = 0; i < in.rows(); ++i) {
      if (seen.insert(RowRef{&in, i, h[i]}).second) keep.push_back(i);
    }
  }
  return GatherTable(in, out_schema, keep, rt);
}

ColumnTable VecSort(ColumnTable&& in, const SortSpec& spec,
                    VexecRuntime& rt) {
  // Per-key comparators specialized once on the column's storage class, so
  // the O(n log n) comparison loop touches raw typed vectors. Null-free
  // typed columns order exactly as Value::Compare does (same type, payload
  // order); anything else falls back to the generic cell comparison.
  enum class KeyKind { kInt64, kDouble, kString, kGeneric };
  struct Key {
    const ColumnVec* col;
    int idx;
    KeyKind kind;
    bool ascending;
  };
  std::vector<Key> keys;
  for (const SortKey& k : spec) {
    int idx = in.schema().IndexOf(k.attr);
    TQP_CHECK(idx >= 0);
    const ColumnVec& col = in.col(static_cast<size_t>(idx));
    KeyKind kind = KeyKind::kGeneric;
    if (!col.MayHaveNulls()) {
      switch (col.storage()) {
        case ColumnStorage::kInt64:
          kind = KeyKind::kInt64;
          break;
        case ColumnStorage::kDouble:
          kind = KeyKind::kDouble;
          break;
        case ColumnStorage::kString:
          kind = KeyKind::kString;
          break;
        default:
          break;
      }
    }
    keys.push_back(Key{&col, idx, kind, k.ascending});
  }
  auto key_compare = [](const Key& k, uint32_t a, uint32_t b) {
    switch (k.kind) {
      case KeyKind::kInt64: {
        int64_t x = k.col->ints()[a], y = k.col->ints()[b];
        return x < y ? -1 : (y < x ? 1 : 0);
      }
      case KeyKind::kDouble: {
        double x = k.col->doubles()[a], y = k.col->doubles()[b];
        return x < y ? -1 : (y < x ? 1 : 0);
      }
      case KeyKind::kString: {
        int c = k.col->strings()[a].compare(k.col->strings()[b]);
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
      }
      case KeyKind::kGeneric:
        return CellRef::Compare(k.col->At(a), k.col->At(b));
    }
    return 0;
  };
  auto less = [&](uint32_t a, uint32_t b) {
    for (const Key& k : keys) {
      int c = key_compare(k, a, b);
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return false;
  };

  if (ShouldSpill(in, rt)) {
    // External merge sort: the input is cut into contiguous runs, each
    // run's rows are stable-sorted (in parallel) and spilled in sorted
    // order, the input is released, and the runs are streamed back through
    // a K-way merge keyed on the sort attributes with ties broken on
    // ascending run index. Earlier runs hold earlier input rows and each
    // run is internally stable, so the merged list is exactly the global
    // stable sort.
    TraceSpan spill_span(rt.tracer, "vexec", "spill_sort");
    size_t n = in.rows();
    uint64_t per_row = std::max<uint64_t>(1, in.ApproxBytes() / n);
    size_t run_rows = static_cast<size_t>(std::max<uint64_t>(
        {(rt.memory_budget / 2) / per_row, 16, n / 256 + 1}));
    size_t num_runs = (n + run_rows - 1) / run_rows;
    SpillFile file;
    if (num_runs > 1 && file.ok()) {
      struct Run {
        uint64_t offset = 0;
        uint64_t bytes = 0;
      };
      std::vector<Run> runs(num_runs);
      std::vector<std::vector<uint32_t>> run_order(num_runs);
      rt.ForTasks(num_runs, [&](size_t k) {
        size_t b = k * run_rows, e = std::min(n, b + run_rows);
        std::vector<uint32_t>& ord = run_order[k];
        ord.resize(e - b);
        for (size_t i = b; i < e; ++i) ord[i - b] = static_cast<uint32_t>(i);
        std::stable_sort(ord.begin(), ord.end(), less);
      });
      std::string buf;
      for (size_t k = 0; k < num_runs; ++k) {
        buf.clear();
        for (uint32_t row : run_order[k]) EncodeSpillRow(in, row, &buf);
        runs[k].offset = file.Append(buf.data(), buf.size());
        runs[k].bytes = buf.size();
        run_order[k] = std::vector<uint32_t>();
      }
      rt.spill.bytes += static_cast<int64_t>(file.bytes_written());
      rt.spill.runs += static_cast<int64_t>(num_runs);

      std::vector<std::pair<int, bool>> key_at;
      for (const Key& k : keys) key_at.emplace_back(k.idx, k.ascending);
      Schema schema = in.schema();
      in = ColumnTable(schema);  // release the input payload before merging

      struct Cursor {
        std::unique_ptr<SpillRegionReader> reader;
        std::vector<Value> row;
        size_t run = 0;
      };
      std::vector<Cursor> cursors;
      for (size_t k = 0; k < num_runs; ++k) {
        Cursor c;
        c.reader = std::make_unique<SpillRegionReader>(&file, runs[k].offset,
                                                       runs[k].bytes);
        c.run = k;
        if (c.reader->Next(&c.row)) cursors.push_back(std::move(c));
      }
      // Min-heap on (sort keys, run index): comp(a, b) = "a sorts after b",
      // so the heap top is the next output row.
      auto cursor_after = [&](const Cursor& a, const Cursor& b) {
        for (const auto& [idx, asc] : key_at) {
          int c = CellRef::Compare(CellRef::Of(a.row[idx]),
                                   CellRef::Of(b.row[idx]));
          if (c != 0) return asc ? c > 0 : c < 0;
        }
        return a.run > b.run;
      };
      std::make_heap(cursors.begin(), cursors.end(), cursor_after);
      ColumnTable out(schema);
      size_t total = 0;
      while (!cursors.empty()) {
        std::pop_heap(cursors.begin(), cursors.end(), cursor_after);
        Cursor& c = cursors.back();
        for (size_t col = 0; col < out.num_cols(); ++col) {
          out.mutable_col(col).AppendValue(c.row[col]);
        }
        ++total;
        if (c.reader->Next(&c.row)) {
          std::push_heap(cursors.begin(), cursors.end(), cursor_after);
        } else {
          cursors.pop_back();
        }
      }
      out.CommitRows(total);
      return out;
    }
  }

  std::vector<uint32_t> order = SortIndices(in.rows(), less, rt);
  return GatherTable(in, in.schema(), order, rt);
}

// Extracts the T1/T2 endpoints of every row into flat arrays.
void ExtractPeriods(const ColumnTable& t, std::vector<TimePoint>* begins,
                    std::vector<TimePoint>* ends, const VexecRuntime& rt) {
  begins->resize(t.rows());
  ends->resize(t.rows());
  const ColumnVec& c1 = t.col(static_cast<size_t>(t.t1_index()));
  const ColumnVec& c2 = t.col(static_cast<size_t>(t.t2_index()));
  rt.ForRows(t.rows(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      (*begins)[i] = c1.At(i).i;
      (*ends)[i] = c2.At(i).i;
    }
  });
}

ColumnTable VecProductT(const ColumnTable& l, const ColumnTable& r,
                        const Schema& out_schema, const VexecRuntime& rt) {
  std::vector<TimePoint> lb, le, rb, re;
  ExtractPeriods(l, &lb, &le, rt);
  ExtractPeriods(r, &rb, &re, rt);
  // The hot loop: the overlap test runs over flat endpoint arrays —
  // max(begin) < min(end) is exactly lp.Intersect(rp).Valid(), the
  // reference's pair filter. Left rows probe morsel-parallel; each morsel's
  // (left, right) pairs stitch back in morsel order, reproducing the serial
  // left-major pair list.
  size_t grain = rt.morsel_rows == 0 ? 1 : rt.morsel_rows;
  std::vector<std::vector<uint32_t>> lfr(
      std::max<size_t>(1, rt.NumMorsels(l.rows())));
  std::vector<std::vector<uint32_t>> rfr(lfr.size());
  rt.ForRows(l.rows(), [&](size_t mb, size_t me) {
    std::vector<uint32_t>& lf = lfr[mb / grain];
    std::vector<uint32_t>& rf = rfr[mb / grain];
    for (size_t i = mb; i < me; ++i) {
      TimePoint b = lb[i], e = le[i];
      for (uint32_t j = 0; j < r.rows(); ++j) {
        if (std::max(b, rb[j]) < std::min(e, re[j])) {
          lf.push_back(static_cast<uint32_t>(i));
          rf.push_back(j);
        }
      }
    }
  });
  std::vector<uint32_t> li = ConcatFrags(lfr);
  std::vector<uint32_t> ri = ConcatFrags(rfr);

  ColumnTable out(out_schema);
  int l1 = l.t1_index(), l2 = l.t2_index();
  int r1 = r.t1_index(), r2 = r.t2_index();
  // Output column layout: left non-time, right non-time, then 1.T1, 1.T2,
  // 2.T1, 2.T2 and the overlap as T1/T2 — the exact value order
  // EvalProductT pushes. One output column per task.
  std::vector<size_t> lsrc, rsrc;
  for (size_t c = 0; c < l.num_cols(); ++c) {
    if (static_cast<int>(c) != l1 && static_cast<int>(c) != l2) {
      lsrc.push_back(c);
    }
  }
  for (size_t c = 0; c < r.num_cols(); ++c) {
    if (static_cast<int>(c) != r1 && static_cast<int>(c) != r2) {
      rsrc.push_back(c);
    }
  }
  size_t fill0 = lsrc.size() + rsrc.size();
  rt.ForTasks(out.num_cols(), [&](size_t pos) {
    ColumnVec& dst = out.mutable_col(pos);
    if (pos < lsrc.size()) {
      dst.AppendGather(l.col(lsrc[pos]), li.data(), li.size());
    } else if (pos < fill0) {
      dst.AppendGather(r.col(rsrc[pos - lsrc.size()]), ri.data(), ri.size());
    } else {
      dst.Reserve(li.size());
      size_t f = pos - fill0;
      for (size_t k = 0; k < li.size(); ++k) {
        TimePoint v = 0;
        switch (f) {
          case 0: v = lb[li[k]]; break;
          case 1: v = le[li[k]]; break;
          case 2: v = rb[ri[k]]; break;
          case 3: v = re[ri[k]]; break;
          case 4: v = std::max(lb[li[k]], rb[ri[k]]); break;
          default: v = std::min(le[li[k]], re[ri[k]]); break;
        }
        dst.AppendInt64(v);
      }
    }
  });
  out.CommitRows(li.size());
  return out;
}

// Emits one output row per (source row, period) pair, in pair order: every
// column is gathered from `in` except T1/T2, which carry the pair's period —
// the columnar form of "copy the tuple, replace its period in place".
ColumnTable EmitWithPeriods(const ColumnTable& in,
                            const std::vector<uint32_t>& rows,
                            const std::vector<Period>& periods,
                            const VexecRuntime& rt) {
  ColumnTable out(in.schema());
  int t1 = in.t1_index(), t2 = in.t2_index();
  rt.ForTasks(in.num_cols(), [&](size_t c) {
    ColumnVec& dst = out.mutable_col(c);
    if (static_cast<int>(c) == t1) {
      dst.Reserve(periods.size());
      for (const Period& p : periods) dst.AppendInt64(p.begin);
    } else if (static_cast<int>(c) == t2) {
      dst.Reserve(periods.size());
      for (const Period& p : periods) dst.AppendInt64(p.end);
    } else {
      dst.AppendGather(in.col(c), rows.data(), rows.size());
    }
  });
  out.CommitRows(rows.size());
  return out;
}

ColumnTable VecDifferenceT(const ColumnTable& l, const ColumnTable& r,
                           const VexecRuntime& rt) {
  // The endpoint-sweep algorithm of EvalDifferenceT, verbatim, over one
  // hash-keyed class table. Class iteration order is semantically inert:
  // fragments are recorded per left row and emitted in left-row order —
  // which is also what makes the per-class sweeps safe to run in parallel
  // (classes touch disjoint left rows).
  struct ClassData {
    std::vector<uint32_t> left_index;
    std::vector<Period> left_period;
    std::vector<Period> right_period;
  };
  std::vector<uint64_t> lh = RowHashes(l, true, rt);
  std::vector<uint64_t> rh = RowHashes(r, true, rt);
  std::unordered_map<RowRef, uint32_t, RowRefHash, ClassRefEq> class_of;
  class_of.reserve(l.rows());
  std::vector<ClassData> classes;
  for (uint32_t i = 0; i < l.rows(); ++i) {
    auto [it, inserted] = class_of.try_emplace(
        RowRef{&l, i, lh[i]}, static_cast<uint32_t>(classes.size()));
    if (inserted) classes.emplace_back();
    ClassData& cd = classes[it->second];
    cd.left_index.push_back(i);
    cd.left_period.push_back(l.RowPeriod(i));
  }
  for (uint32_t j = 0; j < r.rows(); ++j) {
    auto it = class_of.find(RowRef{&r, j, rh[j]});
    if (it == class_of.end()) continue;  // nothing to cancel
    classes[it->second].right_period.push_back(r.RowPeriod(j));
  }

  std::vector<std::vector<Period>> fragments(l.rows());
  auto SweepClass = [&](ClassData& cd) {
    if (cd.right_period.empty()) {
      for (size_t k = 0; k < cd.left_index.size(); ++k) {
        fragments[cd.left_index[k]].push_back(cd.left_period[k]);
      }
      return;
    }
    std::vector<TimePoint> cuts;
    for (const Period& p : cd.left_period) {
      cuts.push_back(p.begin);
      cuts.push_back(p.end);
    }
    for (const Period& p : cd.right_period) {
      cuts.push_back(p.begin);
      cuts.push_back(p.end);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      Period elem(cuts[c], cuts[c + 1]);
      int64_t right_cover = 0;
      for (const Period& p : cd.right_period) {
        if (p.Contains(elem)) ++right_cover;
      }
      int64_t budget = -right_cover;
      for (size_t k = 0; k < cd.left_index.size(); ++k) {
        if (!cd.left_period[k].Contains(elem)) continue;
        ++budget;
        if (budget > 0) {
          std::vector<Period>& fr = fragments[cd.left_index[k]];
          if (!fr.empty() && fr.back().end == elem.begin) {
            fr.back().end = elem.end;
          } else {
            fr.push_back(elem);
          }
        }
      }
    }
  };
  rt.ForUnits(classes.size(), [&](size_t b, size_t e) {
    for (size_t ci = b; ci < e; ++ci) SweepClass(classes[ci]);
  });

  std::vector<uint32_t> rows;
  std::vector<Period> periods;
  for (uint32_t i = 0; i < l.rows(); ++i) {
    for (const Period& p : fragments[i]) {
      rows.push_back(i);
      periods.push_back(p);
    }
  }
  return EmitWithPeriods(l, rows, periods, rt);
}

ColumnTable VecUnionT(const ColumnTable& l, const ColumnTable& r,
                      const VexecRuntime& rt) {
  ColumnTable extra = VecDifferenceT(r, l, rt);
  ColumnTable out(l.schema());
  rt.ForTasks(out.num_cols(), [&](size_t c) {
    out.mutable_col(c).AppendRangeFrom(l.col(c), 0, l.rows());
    out.mutable_col(c).AppendRangeFrom(extra.col(c), 0, extra.rows());
  });
  out.CommitRows(l.rows() + extra.rows());
  return out;
}

ColumnTable VecRdupT(const ColumnTable& in, const VexecRuntime& rt) {
  // Class member lists in insertion (= row) order; each class's coverage
  // sweep is independent of every other class, so classes run in parallel
  // while the (row, fragment) pairs are still emitted in ascending row
  // order — the reference's exact in-place replacement discipline.
  size_t n = in.rows();
  std::vector<uint64_t> h = RowHashes(in, true, rt);
  std::unordered_map<RowRef, uint32_t, RowRefHash, ClassRefEq> class_of;
  class_of.reserve(n);
  std::vector<std::vector<uint32_t>> members;
  for (uint32_t i = 0; i < n; ++i) {
    auto [it, inserted] = class_of.try_emplace(
        RowRef{&in, i, h[i]}, static_cast<uint32_t>(members.size()));
    if (inserted) members.emplace_back();
    members[it->second].push_back(i);
  }
  std::vector<Period> row_period(n);
  rt.ForRows(n, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) row_period[i] = in.RowPeriod(i);
  });
  std::vector<std::vector<Period>> fragments(n);
  rt.ForUnits(members.size(), [&](size_t b, size_t e) {
    std::vector<Period> cov;
    for (size_t ci = b; ci < e; ++ci) {
      cov.clear();
      for (uint32_t i : members[ci]) {
        Period p = row_period[i];
        fragments[i] = SubtractAll(p, cov);
        cov.push_back(p);
        cov = NormalizePeriods(std::move(cov));
      }
    }
  });
  std::vector<uint32_t> rows;
  std::vector<Period> periods;
  for (uint32_t i = 0; i < n; ++i) {
    for (const Period& p : fragments[i]) {
      rows.push_back(i);
      periods.push_back(p);
    }
  }
  return EmitWithPeriods(in, rows, periods, rt);
}

// The greedy adjacency merge of one coalescing class — EvalCoalesce's inner
// loop, verbatim: the head absorbs the first later adjacent fragment until
// a fixpoint. `idxs` lists the class rows in ascending row order;
// period/consumed are global row-indexed arrays (a class only ever touches
// its own rows, so classes can run concurrently; consumed is uint8_t, not
// vector<bool>, precisely so concurrent classes never share a byte through
// bit packing).
void CoalesceClass(const std::vector<uint32_t>& idxs,
                   std::vector<Period>& period,
                   std::vector<uint8_t>& consumed) {
  for (size_t a = 0; a < idxs.size(); ++a) {
    uint32_t head = idxs[a];
    if (consumed[head]) continue;
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t b = a + 1; b < idxs.size(); ++b) {
        uint32_t j = idxs[b];
        if (consumed[j]) continue;
        if (period[head].Adjacent(period[j])) {
          period[head] = period[head].Merge(period[j]);
          consumed[j] = 1;
          changed = true;
          break;  // restart: the grown period may meet earlier fragments
        }
      }
    }
  }
}

ColumnTable VecCoalesce(const ColumnTable& in, VexecRuntime& rt) {
  // Classes interact with nothing, so a hash class table with
  // insertion-ordered member lists reproduces the reference's ordered-map
  // version exactly — and the per-class merges parallelize freely. Over
  // budget, the class table grace-partitions to a spill file instead
  // (value-equivalent rows share a non-temporal hash, hence a partition),
  // and partitions are processed one at a time.
  size_t n = in.rows();
  std::vector<uint8_t> consumed(n, 0);
  std::vector<Period> period(n);
  rt.ForRows(n, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) period[i] = in.RowPeriod(i);
  });
  std::vector<uint64_t> h = RowHashes(in, true, rt);

  bool done = false;
  if (ShouldSpill(in, rt)) {
    TraceSpan spill_span(rt.tracer, "vexec", "spill_coalesce");
    size_t parts = SpillPartitionCount(in.ApproxBytes(), rt.memory_budget);
    SpillPartitioner sp(parts);
    if (sp.ok()) {
      for (size_t i = 0; i < n; ++i) sp.Add(h[i] % parts, in, i);
      sp.FlushAll();
      rt.spill.bytes += static_cast<int64_t>(sp.bytes_written());
      rt.spill.runs += static_cast<int64_t>(parts);
      std::vector<uint32_t> orig;
      std::vector<std::vector<Value>> vals;
      for (size_t p = 0; p < parts; ++p) {
        sp.ReadPartition(p, &orig, &vals);
        ColumnTable part = TableFromRows(in.schema(), vals);
        std::unordered_map<RowRef, uint32_t, RowRefHash, ClassRefEq> class_of;
        class_of.reserve(part.rows());
        std::vector<std::vector<uint32_t>> members;
        for (uint32_t k = 0; k < part.rows(); ++k) {
          auto [it, inserted] = class_of.try_emplace(
              RowRef{&part, k, h[orig[k]]},
              static_cast<uint32_t>(members.size()));
          if (inserted) members.emplace_back();
          members[it->second].push_back(orig[k]);
        }
        rt.ForUnits(members.size(), [&](size_t b, size_t e) {
          for (size_t ci = b; ci < e; ++ci) {
            CoalesceClass(members[ci], period, consumed);
          }
        });
      }
      done = true;
    }
  }
  if (!done) {
    std::unordered_map<RowRef, uint32_t, RowRefHash, ClassRefEq> class_of;
    class_of.reserve(n);
    // Class member lists as intrusive linked lists (head/tail per class,
    // one next[] array): most classes are tiny, and per-class vectors
    // would cost one allocation each at million-row scale.
    std::vector<uint32_t> class_head, class_tail;
    std::vector<int32_t> next_in_class(n, -1);
    for (uint32_t i = 0; i < n; ++i) {
      auto [it, inserted] = class_of.try_emplace(
          RowRef{&in, i, h[i]}, static_cast<uint32_t>(class_head.size()));
      if (inserted) {
        class_head.push_back(i);
        class_tail.push_back(i);
      } else {
        next_in_class[class_tail[it->second]] = static_cast<int32_t>(i);
        class_tail[it->second] = i;
      }
    }
    rt.ForUnits(class_head.size(), [&](size_t b, size_t e) {
      std::vector<uint32_t> idxs;  // per-range scratch, reused
      for (size_t cid = b; cid < e; ++cid) {
        idxs.clear();
        for (int32_t j = static_cast<int32_t>(class_head[cid]); j >= 0;
             j = next_in_class[j]) {
          idxs.push_back(static_cast<uint32_t>(j));
        }
        CoalesceClass(idxs, period, consumed);
      }
    });
  }
  std::vector<uint32_t> rows;
  std::vector<Period> periods;
  for (uint32_t i = 0; i < n; ++i) {
    if (consumed[i]) continue;
    rows.push_back(i);
    periods.push_back(period[i]);
  }
  return EmitWithPeriods(in, rows, periods, rt);
}

// ---- Aggregation ----------------------------------------------------------

// AggState of exec/eval_ops.cc over cells: same accumulation order, same
// min/max update rule (strict comparisons keep the first extremum), same
// Finish typing.
struct VecAggState {
  int64_t count = 0;
  double sum = 0.0;
  bool has_minmax = false;
  Value min, max;
  int64_t non_null = 0;

  void Add(const CellRef& v) {
    ++count;
    if (v.is_null()) return;
    ++non_null;
    if (v.IsNumeric()) sum += v.Numeric();
    if (!has_minmax) {
      min = v.ToValue();
      max = min;
      has_minmax = true;
    } else {
      if (CellRef::Compare(v, CellRef::Of(min)) < 0) min = v.ToValue();
      if (CellRef::Compare(CellRef::Of(max), v) < 0) max = v.ToValue();
    }
  }

  Value Finish(AggFunc f, ValueType input_type) const {
    switch (f) {
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (non_null == 0) return Value::Null();
        if (input_type == ValueType::kDouble) return Value::Double(sum);
        return Value::Int(static_cast<int64_t>(sum));
      case AggFunc::kAvg:
        if (non_null == 0) return Value::Null();
        return Value::Double(sum / static_cast<double>(non_null));
      case AggFunc::kMin:
        return has_minmax ? min : Value::Null();
      case AggFunc::kMax:
        return has_minmax ? max : Value::Null();
    }
    return Value::Null();
  }
};

/// Resolves group-by / aggregate attribute positions with the reference's
/// exact error messages.
Status ResolveAggColumns(const Schema& schema,
                         const std::vector<std::string>& group_by,
                         const std::vector<AggSpec>& aggs,
                         std::vector<int>* group_idx,
                         std::vector<int>* agg_idx,
                         std::vector<ValueType>* agg_type) {
  for (const std::string& g : group_by) {
    int idx = schema.IndexOf(g);
    if (idx < 0) return Status::InvalidArgument("unknown group attr " + g);
    group_idx->push_back(idx);
  }
  for (const AggSpec& a : aggs) {
    if (a.func == AggFunc::kCount && a.attr.empty()) {
      agg_idx->push_back(-1);
      agg_type->push_back(ValueType::kInt);
      continue;
    }
    int idx = schema.IndexOf(a.attr);
    if (idx < 0) return Status::InvalidArgument("unknown agg attr " + a.attr);
    agg_idx->push_back(idx);
    agg_type->push_back(schema.attr(static_cast<size_t>(idx)).type);
  }
  return Status::OK();
}

// Hash/equality over a row's group-key cells only.
struct GroupTable {
  const ColumnTable& in;
  const std::vector<int>& group_idx;

  uint64_t HashRow(uint32_t row) const {
    // Group keys compare with CellRef::Compare (cross-type numeric
    // equality), so hash with the Compare-consistent ClassHash.
    uint64_t seed = 0x51ab1e5;
    for (int gi : group_idx) {
      uint64_t h = in.col(static_cast<size_t>(gi)).At(row).ClassHash();
      seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
    }
    return seed;
  }
  bool RowsEqual(uint32_t a, uint32_t b) const {
    for (int gi : group_idx) {
      const ColumnVec& c = in.col(static_cast<size_t>(gi));
      if (CellRef::Compare(c.At(a), c.At(b)) != 0) return false;
    }
    return true;
  }
};

struct GroupKey {
  uint32_t row;
  uint64_t hash;
};
struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const { return k.hash; }
};
struct GroupKeyEq {
  const GroupTable* gt;
  bool operator()(const GroupKey& a, const GroupKey& b) const {
    return a.hash == b.hash && gt->RowsEqual(a.row, b.row);
  }
};

Result<ColumnTable> VecAggregate(const ColumnTable& in,
                                 const std::vector<std::string>& group_by,
                                 const std::vector<AggSpec>& aggs,
                                 const Schema& out_schema, VexecRuntime& rt) {
  std::vector<int> group_idx, agg_idx;
  std::vector<ValueType> agg_type;
  TQP_RETURN_IF_ERROR(ResolveAggColumns(in.schema(), group_by, aggs,
                                        &group_idx, &agg_idx, &agg_type));
  GroupTable gt{in, group_idx};
  // Group-key hashes morsel-parallel; accumulation stays serial so every
  // group's cells fold in global row order (floating-point sums are not
  // associative — the order is part of the contract).
  std::vector<uint64_t> gh(in.rows());
  rt.ForRows(in.rows(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) gh[i] = gt.HashRow(i);
  });

  if (ShouldSpill(in, rt)) {
    // Grace-partitioned aggregation: equal group keys share a hash, hence a
    // partition, and a partition's rows read back in ascending row order —
    // so per-partition accumulation folds each group in exactly the global
    // row order. Groups re-sort by first-occurrence row before emission.
    TraceSpan spill_span(rt.tracer, "vexec", "spill_aggregate");
    size_t parts = SpillPartitionCount(in.ApproxBytes(), rt.memory_budget);
    SpillPartitioner sp(parts);
    if (sp.ok()) {
      for (size_t i = 0; i < in.rows(); ++i) sp.Add(gh[i] % parts, in, i);
      sp.FlushAll();
      rt.spill.bytes += static_cast<int64_t>(sp.bytes_written());
      rt.spill.runs += static_cast<int64_t>(parts);
      struct GroupOut {
        uint32_t first_row;
        std::vector<Value> finished;
      };
      std::vector<GroupOut> groups;
      std::vector<uint32_t> orig;
      std::vector<std::vector<Value>> vals;
      for (size_t p = 0; p < parts; ++p) {
        sp.ReadPartition(p, &orig, &vals);
        ColumnTable part = TableFromRows(in.schema(), vals);
        GroupTable pgt{part, group_idx};
        std::unordered_map<GroupKey, uint32_t, GroupKeyHash, GroupKeyEq>
            group_of(16, GroupKeyHash{}, GroupKeyEq{&pgt});
        std::vector<uint32_t> first_orig;
        std::vector<std::vector<VecAggState>> states;
        for (uint32_t k = 0; k < part.rows(); ++k) {
          auto [it, inserted] = group_of.try_emplace(
              GroupKey{k, gh[orig[k]]}, static_cast<uint32_t>(states.size()));
          if (inserted) {
            first_orig.push_back(orig[k]);
            states.emplace_back(aggs.size());
          }
          std::vector<VecAggState>& st = states[it->second];
          for (size_t a = 0; a < aggs.size(); ++a) {
            CellRef cell;
            if (agg_idx[a] < 0) {
              cell.type = ValueType::kInt;
              cell.i = 1;
            } else {
              cell = part.col(static_cast<size_t>(agg_idx[a])).At(k);
            }
            st[a].Add(cell);
          }
        }
        for (size_t g = 0; g < states.size(); ++g) {
          GroupOut go;
          go.first_row = first_orig[g];
          for (size_t a = 0; a < aggs.size(); ++a) {
            go.finished.push_back(states[g][a].Finish(aggs[a].func,
                                                      agg_type[a]));
          }
          groups.push_back(std::move(go));
        }
      }
      std::sort(groups.begin(), groups.end(),
                [](const GroupOut& a, const GroupOut& b) {
                  return a.first_row < b.first_row;
                });
      ColumnTable out(out_schema);
      size_t pos = 0;
      for (int gi : group_idx) {
        ColumnVec& dst = out.mutable_col(pos++);
        for (const GroupOut& g : groups) {
          dst.AppendFrom(in.col(static_cast<size_t>(gi)), g.first_row);
        }
      }
      for (size_t a = 0; a < aggs.size(); ++a) {
        ColumnVec& dst = out.mutable_col(pos++);
        for (const GroupOut& g : groups) dst.AppendValue(g.finished[a]);
      }
      out.CommitRows(groups.size());
      return out;
    }
  }

  std::unordered_map<GroupKey, uint32_t, GroupKeyHash, GroupKeyEq> group_of(
      16, GroupKeyHash{}, GroupKeyEq{&gt});
  std::vector<uint32_t> first_row;  // groups in first-occurrence order
  std::vector<std::vector<VecAggState>> states;
  for (uint32_t i = 0; i < in.rows(); ++i) {
    auto [it, inserted] = group_of.try_emplace(
        GroupKey{i, gh[i]}, static_cast<uint32_t>(first_row.size()));
    if (inserted) {
      first_row.push_back(i);
      states.emplace_back(aggs.size());
    }
    std::vector<VecAggState>& st = states[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      CellRef cell;
      if (agg_idx[a] < 0) {
        cell.type = ValueType::kInt;
        cell.i = 1;
      } else {
        cell = in.col(static_cast<size_t>(agg_idx[a])).At(i);
      }
      st[a].Add(cell);
    }
  }

  ColumnTable out(out_schema);
  size_t pos = 0;
  for (int gi : group_idx) {
    ColumnVec& dst = out.mutable_col(pos++);
    for (uint32_t g : first_row) {
      dst.AppendFrom(in.col(static_cast<size_t>(gi)), g);
    }
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    ColumnVec& dst = out.mutable_col(pos++);
    for (size_t g = 0; g < first_row.size(); ++g) {
      dst.AppendValue(states[g][a].Finish(aggs[a].func, agg_type[a]));
    }
  }
  out.CommitRows(first_row.size());
  return out;
}

Result<ColumnTable> VecAggregateT(const ColumnTable& in,
                                  const std::vector<std::string>& group_by,
                                  const std::vector<AggSpec>& aggs,
                                  const Schema& out_schema,
                                  const VexecRuntime& rt) {
  std::vector<int> group_idx, agg_idx;
  std::vector<ValueType> agg_type;
  TQP_RETURN_IF_ERROR(ResolveAggColumns(in.schema(), group_by, aggs,
                                        &group_idx, &agg_idx, &agg_type));
  GroupTable gt{in, group_idx};
  // Hash and period precompute morsel-parallel; the per-group constancy
  // interval sweep appends output rows group-at-a-time and stays serial.
  std::vector<uint64_t> gh(in.rows());
  rt.ForRows(in.rows(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) gh[i] = gt.HashRow(i);
  });
  std::unordered_map<GroupKey, uint32_t, GroupKeyHash, GroupKeyEq> group_of(
      16, GroupKeyHash{}, GroupKeyEq{&gt});
  std::vector<uint32_t> first_row;
  std::vector<std::vector<uint32_t>> members;
  for (uint32_t i = 0; i < in.rows(); ++i) {
    auto [it, inserted] = group_of.try_emplace(
        GroupKey{i, gh[i]}, static_cast<uint32_t>(first_row.size()));
    if (inserted) {
      first_row.push_back(i);
      members.emplace_back();
    }
    members[it->second].push_back(i);
  }

  std::vector<Period> row_period(in.rows());
  rt.ForRows(in.rows(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) row_period[i] = in.RowPeriod(i);
  });

  ColumnTable out(out_schema);
  const size_t key_cols = group_idx.size();
  for (size_t g = 0; g < first_row.size(); ++g) {
    std::vector<TimePoint> cuts;
    for (uint32_t m : members[g]) {
      cuts.push_back(row_period[m].begin);
      cuts.push_back(row_period[m].end);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    std::vector<Value> prev_aggs;
    Period open;
    bool has_open = false;
    auto flush = [&]() {
      if (!has_open) return;
      size_t pos = 0;
      for (size_t c = 0; c < key_cols; ++c) {
        out.mutable_col(pos++).AppendFrom(
            in.col(static_cast<size_t>(group_idx[c])), first_row[g]);
      }
      for (const Value& v : prev_aggs) {
        out.mutable_col(pos++).AppendValue(v);
      }
      out.mutable_col(pos++).AppendValue(Value::Time(open.begin));
      out.mutable_col(pos++).AppendValue(Value::Time(open.end));
      out.CommitRows(1);
      has_open = false;
    };
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      Period elem(cuts[c], cuts[c + 1]);
      std::vector<VecAggState> st(aggs.size());
      int64_t covering = 0;
      for (uint32_t m : members[g]) {
        if (!row_period[m].Contains(elem)) continue;
        ++covering;
        for (size_t a = 0; a < aggs.size(); ++a) {
          CellRef cell;
          if (agg_idx[a] < 0) {
            cell.type = ValueType::kInt;
            cell.i = 1;
          } else {
            cell = in.col(static_cast<size_t>(agg_idx[a])).At(m);
          }
          st[a].Add(cell);
        }
      }
      if (covering == 0) {
        flush();
        continue;
      }
      std::vector<Value> cur;
      for (size_t a = 0; a < aggs.size(); ++a) {
        cur.push_back(st[a].Finish(aggs[a].func, agg_type[a]));
      }
      if (has_open && cur == prev_aggs && open.end == elem.begin) {
        open.end = elem.end;
      } else {
        flush();
        open = elem;
        prev_aggs = std::move(cur);
        has_open = true;
      }
    }
    flush();
  }
  return out;
}

// ---- DBMS order scramble --------------------------------------------------

// The columnar twin of SimulatedBackend::ScrambleRelation: the same seeded
// hash-key stable sort over row indices yields the same permutation.
ColumnTable VecScramble(const ColumnTable& in, uint64_t seed,
                        const VexecRuntime& rt) {
  std::vector<uint64_t> key(in.rows());
  rt.ForRows(in.rows(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      key[i] = SimulatedBackend::MixHash(in.RowHash(i), seed);
    }
  });
  std::vector<uint32_t> order = SortIndices(
      in.rows(),
      [&](uint32_t a, uint32_t b) {
        if (key[a] != key[b]) return key[a] < key[b];
        return ColumnTable::RowCompare(in, a, in, b) < 0;
      },
      rt);
  return GatherTable(in, in.schema(), order, rt);
}

// ---- Vectorized hash join (σ over ×, fused) -------------------------------

// Collects the equality conjuncts Attr = Attr joining the two product sides
// from the predicate's AND tree, as (left column, right column) pairs
// resolved against the product schema (left columns first). Any other
// connective or comparison is simply not a key — the residual predicate is
// re-evaluated in full over the candidates, so keys only need to be
// *necessary* conditions.
void CollectEquiKeys(const ExprPtr& e, const Schema& combined,
                     size_t left_cols,
                     std::vector<std::pair<int, int>>* keys) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kAnd) {
    for (const ExprPtr& c : e->children()) {
      CollectEquiKeys(c, combined, left_cols, keys);
    }
    return;
  }
  if (e->kind() != ExprKind::kCompare || e->compare_op() != CompareOp::kEq) {
    return;
  }
  const ExprPtr& a = e->children()[0];
  const ExprPtr& b = e->children()[1];
  if (a->kind() != ExprKind::kAttr || b->kind() != ExprKind::kAttr) return;
  int ia = combined.IndexOf(a->attr_name());
  int ib = combined.IndexOf(b->attr_name());
  if (ia < 0 || ib < 0) return;
  bool a_left = ia < static_cast<int>(left_cols);
  bool b_left = ib < static_cast<int>(left_cols);
  if (a_left == b_left) return;  // both keys on one side: not a join key
  int li = a_left ? ia : ib;
  int ri = (a_left ? ib : ia) - static_cast<int>(left_cols);
  keys->emplace_back(li, ri);
}

// Builds the (left, right) candidate pairs whose key columns compare equal,
// in left-major order with ascending right rows — a subsequence of the
// Cartesian product's pair order, so the residual selection sees its
// surviving rows in exactly the order σ(×) would emit them. A row with a
// NULL key never satisfies `=` (NULL comparisons are not truthy), so both
// sides drop NULL keys up front. Key equality is CellRef::Compare == 0 —
// the same cross-type numeric equality the predicate's `=` uses — with the
// Compare-consistent ClassHash, so every satisfying pair is a candidate.
void HashJoinCandidates(const ColumnTable& l, const ColumnTable& r,
                        const std::vector<std::pair<int, int>>& keys,
                        const VexecRuntime& rt, std::vector<uint32_t>* li,
                        std::vector<uint32_t>* ri) {
  auto key_hash = [&](const ColumnTable& t, size_t row, bool left,
                      uint64_t* out) {
    uint64_t seed = 0x51ab1e5;
    for (const auto& [lc, rc] : keys) {
      CellRef c = t.col(static_cast<size_t>(left ? lc : rc)).At(row);
      if (c.is_null()) return false;
      seed ^= c.ClassHash() + 0x9e3779b97f4a7c15ULL + (seed << 6) +
              (seed >> 2);
    }
    *out = seed;
    return true;
  };
  std::vector<uint64_t> rh(r.rows());
  std::vector<uint8_t> rvalid(r.rows());
  rt.ForRows(r.rows(), [&](size_t b, size_t e) {
    for (size_t j = b; j < e; ++j) {
      rvalid[j] = key_hash(r, j, false, &rh[j]) ? 1 : 0;
    }
  });
  // Bucketed build side: power-of-two bucket count, counting-sort scatter
  // so each bucket lists its rows in ascending row order.
  size_t nb = 16;
  while (nb < 2 * std::max<size_t>(1, r.rows())) nb <<= 1;
  std::vector<uint32_t> bucket_start(nb + 1, 0);
  for (size_t j = 0; j < r.rows(); ++j) {
    if (rvalid[j]) ++bucket_start[(rh[j] & (nb - 1)) + 1];
  }
  for (size_t b = 0; b < nb; ++b) bucket_start[b + 1] += bucket_start[b];
  std::vector<uint32_t> bucket_rows(bucket_start[nb]);
  {
    std::vector<uint32_t> cur(bucket_start.begin(), bucket_start.end() - 1);
    for (size_t j = 0; j < r.rows(); ++j) {
      if (rvalid[j]) {
        bucket_rows[cur[rh[j] & (nb - 1)]++] = static_cast<uint32_t>(j);
      }
    }
  }
  auto keys_equal = [&](size_t i, size_t j) {
    for (const auto& [lc, rc] : keys) {
      if (CellRef::Compare(l.col(static_cast<size_t>(lc)).At(i),
                           r.col(static_cast<size_t>(rc)).At(j)) != 0) {
        return false;
      }
    }
    return true;
  };
  size_t grain = rt.morsel_rows == 0 ? 1 : rt.morsel_rows;
  std::vector<std::vector<uint32_t>> lfr(
      std::max<size_t>(1, rt.NumMorsels(l.rows())));
  std::vector<std::vector<uint32_t>> rfr(lfr.size());
  rt.ForRows(l.rows(), [&](size_t mb, size_t me) {
    std::vector<uint32_t>& lf = lfr[mb / grain];
    std::vector<uint32_t>& rf = rfr[mb / grain];
    for (size_t i = mb; i < me; ++i) {
      uint64_t h;
      if (!key_hash(l, i, true, &h)) continue;
      size_t b = h & (nb - 1);
      for (uint32_t k = bucket_start[b]; k < bucket_start[b + 1]; ++k) {
        uint32_t j = bucket_rows[k];
        if (rh[j] == h && keys_equal(i, j)) {
          lf.push_back(static_cast<uint32_t>(i));
          rf.push_back(j);
        }
      }
    }
  });
  *li = ConcatFrags(lfr);
  *ri = ConcatFrags(rfr);
}

// ---- The driver -----------------------------------------------------------

/// Folded into the result-cache contract fingerprint; distinct from the
/// reference evaluator's tag so the executors never splice each other's
/// cut-point materializations (only their root results are contractually
/// identical). The vectorized pipeline itself is byte-deterministic across
/// thread counts, so one tag covers every VexecOptions setting.
constexpr uint64_t kVecExecutorTag = 2;

struct VecTreeExecutor {
  const AnnotatedPlan& ann;
  const EngineConfig& config;
  ExecStats* stats;
  const VexecOptions& options;
  VexecRuntime& rt;
  /// Contract+executor digest, fixed for the whole execution.
  uint64_t contract_fp =
      ContractFingerprint(ann.contract(), kVecExecutorTag);

  // The simulated cost accounting of the reference evaluator, plus the
  // batch-engine counters: batches consumed (input rows, or the scanned
  // rows for leaves, per batch_size) and one columnar materialization per
  // operator output. Factored out so the fused hash join can account its
  // product and selection exactly as the unfused plan would.
  void AccountNode(const PlanNode* node, const NodeInfo& info, double in1,
                   double in2, size_t out_rows, ProfileNode* prof = nullptr) {
    if (prof != nullptr) {
      prof->rows_in = static_cast<int64_t>(in1 + in2);
      size_t consumed_rows = node->kind() == OpKind::kScan
                                 ? out_rows
                                 : static_cast<size_t>(in1 + in2);
      prof->batches += static_cast<int64_t>(
          (consumed_rows + options.batch_size - 1) / options.batch_size);
    }
    if (stats == nullptr) return;
    ++stats->op_counts[OpKindName(node->kind())];
    stats->tuples_produced += static_cast<int64_t>(out_rows);
    if (node->kind() == OpKind::kScan) {
      in1 = static_cast<double>(out_rows);
    }
    double units = OpWorkUnits(node->kind(), in1, in2,
                               static_cast<double>(out_rows));
    if (node->kind() == OpKind::kTransferS ||
        node->kind() == OpKind::kTransferD) {
      stats->tuples_transferred += static_cast<int64_t>(in1);
      stats->stratum_work += in1 * config.transfer_cost_per_tuple;
    } else if (info.site == Site::kDbms) {
      double penalty =
          IsTemporalOp(node->kind()) ? config.dbms_temporal_penalty : 1.0;
      stats->dbms_work += units * penalty;
    } else {
      stats->stratum_work += units * config.stratum_cpu_factor;
    }
    size_t consumed = node->kind() == OpKind::kScan
                          ? out_rows
                          : static_cast<size_t>(in1 + in2);
    stats->vec_batches += static_cast<int64_t>(
        (consumed + options.batch_size - 1) / options.batch_size);
    stats->vec_rows += static_cast<int64_t>(out_rows);
    ++stats->vec_materializations;
  }

  ColumnTable MaybeScramble(const PlanNode* node, const NodeInfo& info,
                            ColumnTable result) {
    if (config.dbms_scrambles_order && info.site == Site::kDbms &&
        node->kind() != OpKind::kSort && node->kind() != OpKind::kScan &&
        node->kind() != OpKind::kTransferD) {
      TraceSpan span(config.tracer, "vexec", "scramble");
      if (span.active()) span.Arg("rows", static_cast<uint64_t>(result.rows()));
      result = VecScramble(result, config.scramble_seed, rt);
      if (stats != nullptr) ++stats->vec_materializations;
    }
    return result;
  }

  // σ over × with equality conjuncts across the sides, fused into a
  // partitioned hash join: build buckets on the right input's keys, probe
  // with the left morsels, materialize only the key-equal candidate pairs
  // (a superset of the satisfying rows, in product order), and re-evaluate
  // the full predicate over them. VecEval is per-row pure, so the
  // surviving list — and every stat — is byte-identical to the unfused
  // σ(×). Fusion is skipped when the DBMS scramble would observe the
  // unfiltered product's order.
  Result<ColumnTable> EvalFusedJoin(
      const PlanPtr& select, const PlanPtr& product,
      const std::vector<std::pair<int, int>>& keys, ProfileNode* prof) {
    const NodeInfo& sinfo = ann.info(select.get());
    const NodeInfo& pinfo = ann.info(product.get());
    // The fused product never runs through the Eval shell, so its profile
    // node is stamped here: same shape as the unfused plan, with the join's
    // wall time attributed to the selection (its self time).
    ProfileNode* pprof = nullptr;
    if (prof != nullptr) {
      prof->children.emplace_back();
      pprof = &prof->children.back();
      pprof->op = product->Describe();
      pprof->kind = OpKindName(product->kind());
    }
    ProfileNode* lp = nullptr;
    if (pprof != nullptr) {
      pprof->children.emplace_back();
      lp = &pprof->children.back();
    }
    TQP_ASSIGN_OR_RETURN(l, Eval(product->children()[0], lp));
    ProfileNode* rp = nullptr;
    if (pprof != nullptr) {
      pprof->children.emplace_back();
      rp = &pprof->children.back();
    }
    TQP_ASSIGN_OR_RETURN(r, Eval(product->children()[1], rp));
    std::vector<uint32_t> li, ri;
    HashJoinCandidates(l, r, keys, rt, &li, &ri);
    ColumnTable cand(pinfo.schema);
    size_t lc = l.num_cols();
    rt.ForTasks(cand.num_cols(), [&](size_t pos) {
      if (pos < lc) {
        cand.mutable_col(pos).AppendGather(l.col(pos), li.data(), li.size());
      } else {
        cand.mutable_col(pos).AppendGather(r.col(pos - lc), ri.data(),
                                           ri.size());
      }
    });
    cand.CommitRows(li.size());
    ColumnTable out =
        VecSelect(cand, select->predicate(), options.batch_size, rt);
    // Simulated costs are the *unfused* plan's: the product is charged for
    // its full |l|*|r| output, the selection for consuming it.
    double in1 = static_cast<double>(l.rows());
    double in2 = static_cast<double>(r.rows());
    AccountNode(product.get(), pinfo, in1, in2, l.rows() * r.rows(), pprof);
    AccountNode(select.get(), sinfo, in1 * in2, 0.0, out.rows(), prof);
    if (pprof != nullptr) {
      // Modeled output (the product never materialized); zero self time —
      // its wall is its children's, the join work lands in the selection.
      pprof->rows_out = static_cast<int64_t>(l.rows() * r.rows());
      for (const ProfileNode& c : pprof->children) pprof->wall_ns += c.wall_ns;
    }
    return MaybeScramble(select.get(), sinfo, std::move(out));
  }

  /// Cut points mirroring the reference evaluator's: transfer boundaries
  /// and the root. Entries store the row Relation (ColumnTable's
  /// ToRelation/FromRelation round trip is byte-identical), keyed under
  /// kVecExecutorTag.
  bool IsCachePoint(const PlanPtr& node) const {
    return node->kind() == OpKind::kTransferS ||
           node->kind() == OpKind::kTransferD || node == ann.plan();
  }

  /// Per-node observability shell (the vectorized twin of the reference
  /// evaluator's): times the node and stamps profile/span when requested,
  /// else falls straight through on two null tests.
  Result<ColumnTable> Eval(const PlanPtr& node, ProfileNode* prof) {
    if (config.tracer == nullptr && prof == nullptr) {
      return EvalCached(node, nullptr);
    }
    std::chrono::steady_clock::time_point t0;
    if (prof != nullptr) t0 = std::chrono::steady_clock::now();
    TraceSpan span(config.tracer, "vexec", OpKindName(node->kind()));
    Result<ColumnTable> result = EvalCached(node, prof);
    if (prof != nullptr) {
      prof->op = node->Describe();
      prof->kind = OpKindName(node->kind());
      prof->wall_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      if (result.ok()) {
        prof->rows_out = static_cast<int64_t>(result.value().rows());
      }
    }
    if (span.active() && result.ok()) {
      span.Arg("rows", static_cast<uint64_t>(result.value().rows()));
    }
    return result;
  }

  Result<ColumnTable> EvalCached(const PlanPtr& node, ProfileNode* prof) {
    if (config.result_cache == nullptr || !IsCachePoint(node)) {
      return EvalInner(node, prof);
    }
    SubplanCacheKey key =
        MakeSubplanCacheKey(node, ann.info(node.get()), ann.catalog(),
                            config.result_cache_env, contract_fp);
    auto cached = [&] {
      TraceSpan probe(config.tracer, "vexec", "result_cache_probe");
      auto c = config.result_cache->Lookup(key);
      if (probe.active()) probe.Arg("hit", uint64_t{c ? 1u : 0u});
      return c;
    }();
    if (cached) {
      // Splice the cached rows back into columnar form; nothing below the
      // cut runs or is accounted.
      if (stats != nullptr) ++stats->result_cache_hits;
      if (prof != nullptr) prof->result_cache_hit = true;
      return ColumnTable::FromRelation(*cached);
    }
    if (stats != nullptr) ++stats->result_cache_misses;
    TQP_ASSIGN_OR_RETURN(result, EvalInner(node, prof));
    Relation rows = result.ToRelation();
    rows.set_order(ann.info(node.get()).order);
    config.result_cache->Insert(key, std::move(rows));
    return result;
  }

  Result<ColumnTable> EvalInner(const PlanPtr& node, ProfileNode* prof) {
    const NodeInfo& info = ann.info(node.get());
    // Backend pushdown at a transferS cut — the columnar twin of the
    // reference evaluator's interception: fetch the cut result natively,
    // account only the transfer itself, fall back in-engine on failure.
    if (node->kind() == OpKind::kTransferS && config.backend != nullptr &&
        config.backend->SupportsPushdown()) {
      if (CanPushCut(*config.backend, node->child(0), ann)) {
        auto pushed = ExecuteCutPoint(*config.backend, node->child(0), ann,
                                      config);
        if (pushed.ok()) {
          ColumnTable result = ColumnTable::FromRelation(pushed.value());
          if (stats != nullptr) {
            ++stats->backend_pushdowns;
            stats->backend_rows += static_cast<int64_t>(result.rows());
          }
          if (prof != nullptr) prof->backend_pushed = true;
          AccountNode(node.get(), info, static_cast<double>(result.rows()),
                      0.0, result.rows());
          return result;
        }
        if (stats != nullptr) ++stats->backend_fallbacks;
      } else if (stats != nullptr) {
        // The serializer cannot express the subtree (distinct from a
        // runtime SQL failure, which counts as a fallback above).
        ++stats->backend_refusals;
      }
    }
    if (node->kind() == OpKind::kSelect &&
        node->children()[0]->kind() == OpKind::kProduct) {
      const PlanPtr& product = node->children()[0];
      const NodeInfo& pinfo = ann.info(product.get());
      bool scrambled =
          config.dbms_scrambles_order && pinfo.site == Site::kDbms;
      if (!scrambled) {
        size_t left_cols =
            ann.info(product->children()[0].get()).schema.size();
        std::vector<std::pair<int, int>> keys;
        CollectEquiKeys(node->predicate(), pinfo.schema, left_cols, &keys);
        if (!keys.empty()) return EvalFusedJoin(node, product, keys, prof);
      }
    }
    std::vector<ColumnTable> inputs;
    for (const PlanPtr& c : node->children()) {
      ProfileNode* cp = nullptr;
      if (prof != nullptr) {
        prof->children.emplace_back();
        cp = &prof->children.back();
      }
      TQP_ASSIGN_OR_RETURN(r, Eval(c, cp));
      inputs.push_back(std::move(r));
    }
    double in1 = inputs.empty() ? 0.0 : static_cast<double>(inputs[0].rows());
    double in2 =
        inputs.size() < 2 ? 0.0 : static_cast<double>(inputs[1].rows());
    TQP_ASSIGN_OR_RETURN(result, Apply(node, info, inputs));
    AccountNode(node.get(), info, in1, in2, result.rows(), prof);
    return MaybeScramble(node.get(), info, std::move(result));
  }

  Result<ColumnTable> Apply(const PlanPtr& node, const NodeInfo& info,
                            std::vector<ColumnTable>& in) {
    switch (node->kind()) {
      case OpKind::kScan: {
        const CatalogEntry* e = ann.catalog().Find(node->rel_name());
        if (e == nullptr) return Status::NotFound(node->rel_name());
        return VecScan(*e, rt);
      }
      case OpKind::kSelect:
        return VecSelect(in[0], node->predicate(), options.batch_size, rt);
      case OpKind::kProject:
        return VecProject(in[0], node->projections(), info.schema,
                          options.batch_size, rt);
      case OpKind::kUnionAll:
        return VecUnionAll(in[0], in[1], info.schema, rt);
      case OpKind::kUnion:
        return VecUnion(in[0], in[1], info.schema, rt);
      case OpKind::kProduct:
        return VecProduct(in[0], in[1], info.schema, rt);
      case OpKind::kDifference:
        return VecDifference(in[0], in[1], rt);
      case OpKind::kAggregate:
        return VecAggregate(in[0], node->group_by(), node->aggregates(),
                            info.schema, rt);
      case OpKind::kRdup:
        return VecRdup(in[0], info.schema, rt);
      case OpKind::kProductT:
        return VecProductT(in[0], in[1], info.schema, rt);
      case OpKind::kDifferenceT:
        return VecDifferenceT(in[0], in[1], rt);
      case OpKind::kAggregateT:
        return VecAggregateT(in[0], node->group_by(), node->aggregates(),
                             info.schema, rt);
      case OpKind::kRdupT:
        return VecRdupT(in[0], rt);
      case OpKind::kUnionT:
        return VecUnionT(in[0], in[1], rt);
      case OpKind::kSort:
        return VecSort(std::move(in[0]), node->sort_spec(), rt);
      case OpKind::kCoalesce:
        return VecCoalesce(in[0], rt);
      case OpKind::kTransferS:
      case OpKind::kTransferD:
        return std::move(in[0]);
    }
    return Status::Error("unreachable operator kind");
  }
};

}  // namespace

Result<Relation> ExecuteVectorized(const AnnotatedPlan& plan,
                                   const EngineConfig& config,
                                   ExecStats* stats,
                                   const VexecOptions& options,
                                   ProfileNode* profile) {
  VexecOptions opts = options;
  if (opts.batch_size == 0) opts.batch_size = 1;
  if (opts.morsel_rows == 0) opts.morsel_rows = 1;
  if (opts.threads == 0) opts.threads = 1;
  std::unique_ptr<WorkStealingPool> pool;
  VexecRuntime rt;
  rt.morsel_rows = opts.morsel_rows;
  rt.memory_budget = opts.memory_budget;
  rt.tracer = config.tracer;
  if (opts.threads > 1) {
    pool = std::make_unique<WorkStealingPool>(opts.threads);
    rt.pool = pool.get();
  }
  VecTreeExecutor ex{plan, config, stats, opts, rt};
  TQP_ASSIGN_OR_RETURN(table, ex.Eval(plan.plan(), profile));
  Relation out = VecToRelation(table, rt);
  out.set_order(plan.root_info().order);
  if (stats != nullptr) {
    stats->spill_bytes += rt.spill.bytes;
    stats->spill_runs += rt.spill.runs;
    if (pool != nullptr) {
      stats->morsels += static_cast<int64_t>(pool->morsels_executed());
      stats->steals += static_cast<int64_t>(pool->steals());
    }
  }
  return out;
}

Result<Relation> ExecuteVectorizedPlan(const PlanPtr& plan,
                                       const Catalog& catalog,
                                       const EngineConfig& config,
                                       ExecStats* stats,
                                       const VexecOptions& options) {
  TQP_ASSIGN_OR_RETURN(
      ann, AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset()));
  return ExecuteVectorized(ann, config, stats, options);
}

}  // namespace tqp
