// Cost primitives shared by the executor (actual work accounting) and the
// optimizer (estimated plan cost). Keeping both on the same formulas makes
// the cost-based plan choice consistent with the simulated execution the
// benchmarks measure.
#ifndef TQP_EXEC_COST_MODEL_H_
#define TQP_EXEC_COST_MODEL_H_

#include "algebra/derivation.h"
#include "algebra/plan.h"

namespace tqp {

class Backend;
class SubplanResultCache;
class Tracer;

/// Work units for one operator invocation given input/output cardinalities.
/// Transfers are charged separately (per tuple moved).
double OpWorkUnits(OpKind kind, double in1, double in2, double out);

/// Measured (or synthesized) per-operator cost behavior of a DBMS backend,
/// produced by Backend::Calibrate. When `calibrated`, the cost model charges
/// DBMS-site operators `units * dbms_op_factor[kind]` and transfers
/// `tuples * transfer_cost_per_tuple` instead of the EngineConfig constants,
/// so transfer placement responds to how the actual backend behaves.
struct BackendCostProfile {
  /// False = profile unset; the cost model falls back to EngineConfig's
  /// constants (byte-identical to the pre-backend cost model).
  bool calibrated = false;
  /// Stable digest of the quantized factors; recorded in plan-cache
  /// snapshots so plans chosen under one calibration are never replayed
  /// under another.
  uint64_t fingerprint = 0;
  /// Work-unit multiplier per operator kind at the DBMS site, relative to
  /// the unit DBMS cost of the constant model.
  double dbms_op_factor[kOpKindCount] = {};
  /// Work units charged per tuple crossing a transfer.
  double transfer_cost_per_tuple = 2.0;
};

/// Execution-environment knobs for the simulated layered architecture
/// (Section 2.1/4.5): the stratum is slower per tuple than the mature DBMS,
/// the DBMS pays a heavy penalty for temporal operations (simulated with
/// complex SQL), and transfers cost per tuple moved.
struct EngineConfig {
  /// Deterministically permute the result order of every non-sort operation
  /// executed at the DBMS site (models "unspecified order", Section 4.5).
  bool dbms_scrambles_order = false;
  /// Seed for the deterministic scramble.
  uint64_t scramble_seed = 0x5eed;

  /// Relative per-tuple work of a stratum operation vs. the same DBMS one.
  double stratum_cpu_factor = 4.0;
  /// Work units charged per tuple crossing a transfer operation.
  double transfer_cost_per_tuple = 2.0;
  /// Extra work factor for temporal operations executed at the DBMS.
  double dbms_temporal_penalty = 25.0;

  /// The DBMS below the cut. Non-owning (the Engine owns its backend);
  /// nullptr means in-engine evaluation of DBMS-site subtrees, exactly as
  /// before the backend layer existed.
  Backend* backend = nullptr;
  /// Measured backend costs; non-owning. nullptr or !calibrated means the
  /// constant model above.
  const BackendCostProfile* calibration = nullptr;

  /// Versioned subplan result cache; non-owning (the Engine owns it).
  /// nullptr disables incremental execution — both executors behave exactly
  /// as if the cache layer did not exist.
  SubplanResultCache* result_cache = nullptr;
  /// Environment fingerprint stored with every cached result: covers the
  /// scramble mode/seed, backend identity, and calibration fingerprint, so
  /// results never leak across engine environments that could produce
  /// different bytes. Computed once by the Engine.
  uint64_t result_cache_env = 0;

  /// Per-query span recorder (core/trace.h); non-owning, set by the Engine
  /// for traced queries. nullptr (the default) disables tracing — the cost
  /// is one pointer test per operator/morsel/phase, never per row.
  Tracer* tracer = nullptr;
};

/// Estimated total cost of a plan: per-node OpWorkUnits on the derived
/// cardinalities, weighted by site factors, plus transfer charges.
double EstimatePlanCost(const AnnotatedPlan& plan, const EngineConfig& config);

/// Same, against any annotation backing (e.g. the enumerator's shared
/// derivation cache) — only bottom-up information is consulted.
double EstimatePlanCost(const PlanPtr& root, const PlanContext& ctx,
                        const EngineConfig& config);

}  // namespace tqp

#endif  // TQP_EXEC_COST_MODEL_H_
