// Operator-level implementations of the extended algebra (Table 1).
#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "exec/evaluator.h"

namespace tqp {

namespace {

// Hashable/comparable key over a whole tuple.
struct TupleKey {
  const Tuple* t;

  bool operator==(const TupleKey& o) const { return *t == *o.t; }
};

struct TupleKeyHash {
  size_t operator()(const TupleKey& k) const { return k.t->Hash(); }
};

// Non-time attribute values of a tuple: the value-equivalence class key.
std::vector<Value> ClassKey(const Tuple& t, const Schema& schema) {
  std::vector<Value> out;
  int i1 = schema.T1Index();
  int i2 = schema.T2Index();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (static_cast<int>(i) == i1 || static_cast<int>(i) == i2) continue;
    out.push_back(t.at(i));
  }
  return out;
}

}  // namespace

Relation EvalSelect(const Relation& in, const ExprPtr& predicate) {
  Relation out(in.schema());
  for (const Tuple& t : in.tuples()) {
    if (predicate->EvalPredicate(t, in.schema())) out.Append(t);
  }
  return out;
}

Result<Relation> EvalProject(const Relation& in,
                             const std::vector<ProjItem>& items,
                             const Schema& out_schema) {
  Relation out(out_schema);
  for (const Tuple& t : in.tuples()) {
    Tuple nt;
    for (const ProjItem& item : items) {
      TQP_ASSIGN_OR_RETURN(v, item.expr->Eval(t, in.schema()));
      nt.push_back(std::move(v));
    }
    out.Append(std::move(nt));
  }
  return out;
}

Relation EvalUnionAll(const Relation& l, const Relation& r, Schema out_schema) {
  Relation out(std::move(out_schema));
  for (const Tuple& t : l.tuples()) out.Append(t);
  for (const Tuple& t : r.tuples()) out.Append(t);
  return out;
}

Relation EvalUnion(const Relation& l, const Relation& r, Schema out_schema) {
  // max-multiplicity union: all of l, then the occurrences of r that exceed
  // their multiplicity in l.
  Relation out(std::move(out_schema));
  std::unordered_map<TupleKey, int64_t, TupleKeyHash> left_count;
  for (const Tuple& t : l.tuples()) {
    out.Append(t);
    ++left_count[TupleKey{&t}];
  }
  std::unordered_map<TupleKey, int64_t, TupleKeyHash> right_seen;
  for (const Tuple& t : r.tuples()) {
    int64_t seen = ++right_seen[TupleKey{&t}];
    auto it = left_count.find(TupleKey{&t});
    int64_t in_left = it == left_count.end() ? 0 : it->second;
    if (seen > in_left) out.Append(t);
  }
  return out;
}

Relation EvalProduct(const Relation& l, const Relation& r, Schema out_schema) {
  Relation out(std::move(out_schema));
  for (const Tuple& lt : l.tuples()) {
    for (const Tuple& rt : r.tuples()) {
      Tuple nt;
      for (const Value& v : lt.values()) nt.push_back(v);
      for (const Value& v : rt.values()) nt.push_back(v);
      out.Append(std::move(nt));
    }
  }
  return out;
}

Relation EvalDifference(const Relation& l, const Relation& r) {
  // For each right tuple, one matching left occurrence is cancelled; the
  // earliest occurrences are cancelled first, so survivors keep their order.
  std::unordered_map<TupleKey, int64_t, TupleKeyHash> cancel;
  for (const Tuple& t : r.tuples()) ++cancel[TupleKey{&t}];
  Relation out(l.schema());
  for (const Tuple& t : l.tuples()) {
    auto it = cancel.find(TupleKey{&t});
    if (it != cancel.end() && it->second > 0) {
      --it->second;
      continue;
    }
    out.Append(t);
  }
  return out;
}

namespace {

struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool has_minmax = false;
  Value min, max;
  int64_t non_null = 0;

  void Add(const Value& v) {
    ++count;
    if (v.is_null()) return;
    ++non_null;
    if (v.IsNumeric()) sum += v.NumericValue();
    if (!has_minmax) {
      min = v;
      max = v;
      has_minmax = true;
    } else {
      if (v < min) min = v;
      if (max < v) max = v;
    }
  }

  Value Finish(AggFunc f, ValueType input_type) const {
    switch (f) {
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (non_null == 0) return Value::Null();
        if (input_type == ValueType::kDouble) return Value::Double(sum);
        return Value::Int(static_cast<int64_t>(sum));
      case AggFunc::kAvg:
        if (non_null == 0) return Value::Null();
        return Value::Double(sum / static_cast<double>(non_null));
      case AggFunc::kMin:
        return has_minmax ? min : Value::Null();
      case AggFunc::kMax:
        return has_minmax ? max : Value::Null();
    }
    return Value::Null();
  }
};

struct VecValueLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace

Result<Relation> EvalAggregate(const Relation& in,
                               const std::vector<std::string>& group_by,
                               const std::vector<AggSpec>& aggs,
                               const Schema& out_schema) {
  std::vector<int> group_idx;
  for (const std::string& g : group_by) {
    int idx = in.schema().IndexOf(g);
    if (idx < 0) return Status::InvalidArgument("unknown group attr " + g);
    group_idx.push_back(idx);
  }
  std::vector<int> agg_idx;
  std::vector<ValueType> agg_type;
  for (const AggSpec& a : aggs) {
    if (a.func == AggFunc::kCount && a.attr.empty()) {
      agg_idx.push_back(-1);
      agg_type.push_back(ValueType::kInt);
      continue;
    }
    int idx = in.schema().IndexOf(a.attr);
    if (idx < 0) return Status::InvalidArgument("unknown agg attr " + a.attr);
    agg_idx.push_back(idx);
    agg_type.push_back(in.schema().attr(static_cast<size_t>(idx)).type);
  }

  // Groups are emitted in order of first occurrence, which realizes
  // Order(result) = Prefix(Order(r), GroupPairs) from Table 1.
  std::map<std::vector<Value>, size_t, VecValueLess> group_of;
  std::vector<std::vector<Value>> group_keys;
  std::vector<std::vector<AggState>> states;
  for (const Tuple& t : in.tuples()) {
    std::vector<Value> key;
    for (int gi : group_idx) key.push_back(t.at(static_cast<size_t>(gi)));
    auto [it, inserted] = group_of.try_emplace(key, group_keys.size());
    if (inserted) {
      group_keys.push_back(key);
      states.emplace_back(aggs.size());
    }
    std::vector<AggState>& st = states[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      st[a].Add(agg_idx[a] < 0 ? Value::Int(1)
                               : t.at(static_cast<size_t>(agg_idx[a])));
    }
  }

  Relation out(out_schema);
  for (size_t g = 0; g < group_keys.size(); ++g) {
    Tuple nt;
    for (const Value& v : group_keys[g]) nt.push_back(v);
    for (size_t a = 0; a < aggs.size(); ++a) {
      nt.push_back(states[g][a].Finish(aggs[a].func, agg_type[a]));
    }
    out.Append(std::move(nt));
  }
  return out;
}

Relation EvalRdup(const Relation& in, Schema out_schema) {
  Relation out(std::move(out_schema));
  std::unordered_map<TupleKey, bool, TupleKeyHash> seen;
  std::deque<Tuple> owned;  // stable addresses for the key map
  for (const Tuple& t : in.tuples()) {
    owned.push_back(t);
    if (seen.emplace(TupleKey{&owned.back()}, true).second) {
      out.Append(t);
    } else {
      owned.pop_back();
    }
  }
  return out;
}

Relation EvalSort(const Relation& in, const SortSpec& spec) {
  Relation out = in;
  TupleComparator cmp(spec, in.schema());
  std::stable_sort(out.mutable_tuples().begin(), out.mutable_tuples().end(),
                   [&cmp](const Tuple& a, const Tuple& b) {
                     return cmp.Compare(a, b) < 0;
                   });
  return out;
}

Relation EvalProductT(const Relation& l, const Relation& r, Schema out_schema) {
  Relation out(std::move(out_schema));
  const Schema& ls = l.schema();
  const Schema& rs = r.schema();
  int l1 = ls.T1Index(), l2 = ls.T2Index();
  int r1 = rs.T1Index(), r2 = rs.T2Index();
  for (const Tuple& lt : l.tuples()) {
    Period lp = TuplePeriod(lt, ls);
    for (const Tuple& rt : r.tuples()) {
      Period rp = TuplePeriod(rt, rs);
      Period overlap = lp.Intersect(rp);
      if (!overlap.Valid()) continue;
      Tuple nt;
      for (size_t i = 0; i < ls.size(); ++i) {
        if (static_cast<int>(i) == l1 || static_cast<int>(i) == l2) continue;
        nt.push_back(lt.at(i));
      }
      for (size_t i = 0; i < rs.size(); ++i) {
        if (static_cast<int>(i) == r1 || static_cast<int>(i) == r2) continue;
        nt.push_back(rt.at(i));
      }
      nt.push_back(Value::Time(lp.begin));
      nt.push_back(Value::Time(lp.end));
      nt.push_back(Value::Time(rp.begin));
      nt.push_back(Value::Time(rp.end));
      nt.push_back(Value::Time(overlap.begin));
      nt.push_back(Value::Time(overlap.end));
      out.Append(std::move(nt));
    }
  }
  return out;
}

Relation EvalDifferenceT(const Relation& l, const Relation& r) {
  // Snapshot-reducible multiset difference. Per value-equivalence class, an
  // endpoint sweep determines the surviving multiplicity of each elementary
  // interval (max(0, leftCount - rightCount)); surviving mass is attributed
  // to the earliest covering left tuples in list order, and each left
  // tuple's surviving intervals are then stitched into maximal fragments.
  // For a snapshot-duplicate-free left argument this degenerates to
  // "left period minus the union of the matching right periods".
  const Schema& schema = l.schema();

  struct ClassData {
    std::vector<size_t> left_index;   // positions in l
    std::vector<Period> left_period;
    std::vector<Period> right_period;
  };
  std::map<std::vector<Value>, ClassData, VecValueLess> classes;
  for (size_t i = 0; i < l.size(); ++i) {
    ClassData& cd = classes[ClassKey(l.tuple(i), schema)];
    cd.left_index.push_back(i);
    cd.left_period.push_back(TuplePeriod(l.tuple(i), schema));
  }
  for (const Tuple& t : r.tuples()) {
    auto it = classes.find(ClassKey(t, schema));
    if (it == classes.end()) continue;  // nothing to cancel
    it->second.right_period.push_back(TuplePeriod(t, r.schema()));
  }

  // Surviving fragments per left tuple position.
  std::vector<std::vector<Period>> fragments(l.size());
  for (auto& [key, cd] : classes) {
    if (cd.right_period.empty()) {
      for (size_t k = 0; k < cd.left_index.size(); ++k) {
        fragments[cd.left_index[k]].push_back(cd.left_period[k]);
      }
      continue;
    }
    std::vector<TimePoint> cuts;
    for (const Period& p : cd.left_period) {
      cuts.push_back(p.begin);
      cuts.push_back(p.end);
    }
    for (const Period& p : cd.right_period) {
      cuts.push_back(p.begin);
      cuts.push_back(p.end);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      Period elem(cuts[c], cuts[c + 1]);
      int64_t right_cover = 0;
      for (const Period& p : cd.right_period) {
        if (p.Contains(elem)) ++right_cover;
      }
      int64_t budget = -right_cover;  // negative => cancelled copies
      for (size_t k = 0; k < cd.left_index.size(); ++k) {
        if (!cd.left_period[k].Contains(elem)) continue;
        ++budget;
        if (budget > 0) {
          std::vector<Period>& fr = fragments[cd.left_index[k]];
          if (!fr.empty() && fr.back().end == elem.begin) {
            fr.back().end = elem.end;  // stitch adjacent elementary pieces
          } else {
            fr.push_back(elem);
          }
        }
      }
    }
  }

  Relation out(schema);
  for (size_t i = 0; i < l.size(); ++i) {
    for (const Period& p : fragments[i]) {
      Tuple nt = l.tuple(i);
      SetTuplePeriod(&nt, schema, p);
      out.Append(std::move(nt));
    }
  }
  return out;
}

Relation EvalUnionT(const Relation& l, const Relation& r) {
  Relation extra = EvalDifferenceT(r, l);
  Relation out(l.schema());
  for (const Tuple& t : l.tuples()) out.Append(t);
  for (const Tuple& t : extra.tuples()) out.Append(t);
  return out;
}

Result<Relation> EvalAggregateT(const Relation& in,
                                const std::vector<std::string>& group_by,
                                const std::vector<AggSpec>& aggs,
                                const Schema& out_schema) {
  const Schema& schema = in.schema();
  std::vector<int> group_idx;
  for (const std::string& g : group_by) {
    int idx = schema.IndexOf(g);
    if (idx < 0) return Status::InvalidArgument("unknown group attr " + g);
    group_idx.push_back(idx);
  }
  std::vector<int> agg_idx;
  std::vector<ValueType> agg_type;
  for (const AggSpec& a : aggs) {
    if (a.func == AggFunc::kCount && a.attr.empty()) {
      agg_idx.push_back(-1);
      agg_type.push_back(ValueType::kInt);
      continue;
    }
    int idx = schema.IndexOf(a.attr);
    if (idx < 0) return Status::InvalidArgument("unknown agg attr " + a.attr);
    agg_idx.push_back(idx);
    agg_type.push_back(schema.attr(static_cast<size_t>(idx)).type);
  }

  struct GroupData {
    std::vector<size_t> members;  // tuple positions
  };
  std::map<std::vector<Value>, size_t, VecValueLess> group_of;
  std::vector<std::vector<Value>> group_keys;
  std::vector<GroupData> groups;
  for (size_t i = 0; i < in.size(); ++i) {
    std::vector<Value> key;
    for (int gi : group_idx) {
      key.push_back(in.tuple(i).at(static_cast<size_t>(gi)));
    }
    auto [it, inserted] = group_of.try_emplace(key, groups.size());
    if (inserted) {
      group_keys.push_back(key);
      groups.emplace_back();
    }
    groups[it->second].members.push_back(i);
  }

  Relation out(out_schema);
  for (size_t g = 0; g < groups.size(); ++g) {
    // Sweep the group's elementary intervals; evaluate the aggregates over
    // the covering tuples of each; merge intervals with identical results
    // into maximal constancy intervals (snapshot reducibility).
    std::vector<TimePoint> cuts;
    for (size_t m : groups[g].members) {
      Period p = TuplePeriod(in.tuple(m), schema);
      cuts.push_back(p.begin);
      cuts.push_back(p.end);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    std::vector<Value> prev_aggs;
    Period open;
    bool has_open = false;
    auto flush = [&]() {
      if (!has_open) return;
      Tuple nt;
      for (const Value& v : group_keys[g]) nt.push_back(v);
      for (const Value& v : prev_aggs) nt.push_back(v);
      nt.push_back(Value::Time(open.begin));
      nt.push_back(Value::Time(open.end));
      out.Append(std::move(nt));
      has_open = false;
    };
    for (size_t c = 0; c + 1 < cuts.size(); ++c) {
      Period elem(cuts[c], cuts[c + 1]);
      std::vector<AggState> st(aggs.size());
      int64_t covering = 0;
      for (size_t m : groups[g].members) {
        if (!TuplePeriod(in.tuple(m), schema).Contains(elem)) continue;
        ++covering;
        for (size_t a = 0; a < aggs.size(); ++a) {
          st[a].Add(agg_idx[a] < 0
                        ? Value::Int(1)
                        : in.tuple(m).at(static_cast<size_t>(agg_idx[a])));
        }
      }
      if (covering == 0) {
        flush();
        continue;
      }
      std::vector<Value> cur;
      for (size_t a = 0; a < aggs.size(); ++a) {
        cur.push_back(st[a].Finish(aggs[a].func, agg_type[a]));
      }
      if (has_open && cur == prev_aggs && open.end == elem.begin) {
        open.end = elem.end;
      } else {
        flush();
        open = elem;
        prev_aggs = std::move(cur);
        has_open = true;
      }
    }
    flush();
  }
  return out;
}

Relation EvalRdupT(const Relation& in) {
  // Equivalent closed form of the paper's recursion (see Section 2.5 and the
  // proof sketch in DESIGN.md): processing tuples in list order, each tuple
  // contributes its period minus the union of all earlier periods of its
  // value-equivalence class, split into ascending fragments in place.
  const Schema& schema = in.schema();
  std::map<std::vector<Value>, std::vector<Period>, VecValueLess> covered;
  Relation out(schema);
  for (const Tuple& t : in.tuples()) {
    std::vector<Value> key = ClassKey(t, schema);
    std::vector<Period>& cov = covered[key];
    Period p = TuplePeriod(t, schema);
    for (const Period& frag : SubtractAll(p, cov)) {
      Tuple nt = t;
      SetTuplePeriod(&nt, schema, frag);
      out.Append(std::move(nt));
    }
    cov.push_back(p);
    cov = NormalizePeriods(std::move(cov));
  }
  return out;
}

Relation EvalCoalesce(const Relation& in) {
  // Greedy adjacency merge per the minimal coalescing of Section 2.4: the
  // head of each value-equivalence class repeatedly absorbs the first later
  // tuple whose period is adjacent to the (growing) head period; the merged
  // tuple keeps the head's list position. Overlapping or equal periods are
  // NOT merged (that is rdupT's job).
  const Schema& schema = in.schema();
  size_t n = in.size();
  std::vector<bool> consumed(n, false);
  std::vector<Period> period(n);
  std::map<std::vector<Value>, std::vector<size_t>, VecValueLess> classes;
  for (size_t i = 0; i < n; ++i) {
    period[i] = TuplePeriod(in.tuple(i), schema);
    classes[ClassKey(in.tuple(i), schema)].push_back(i);
  }
  for (auto& [key, idxs] : classes) {
    for (size_t a = 0; a < idxs.size(); ++a) {
      size_t head = idxs[a];
      if (consumed[head]) continue;
      bool changed = true;
      while (changed) {
        changed = false;
        for (size_t b = a + 1; b < idxs.size(); ++b) {
          size_t j = idxs[b];
          if (consumed[j]) continue;
          if (period[head].Adjacent(period[j])) {
            period[head] = period[head].Merge(period[j]);
            consumed[j] = true;
            changed = true;
            break;  // restart: the grown period may meet earlier-scanned ones
          }
        }
      }
    }
  }
  Relation out(schema);
  for (size_t i = 0; i < n; ++i) {
    if (consumed[i]) continue;
    Tuple nt = in.tuple(i);
    SetTuplePeriod(&nt, schema, period[i]);
    out.Append(std::move(nt));
  }
  return out;
}

}  // namespace tqp
