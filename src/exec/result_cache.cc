#include "exec/result_cache.h"

#include <utility>

#include "core/hash.h"
#include "core/value.h"

namespace tqp {

uint64_t SubplanCacheKey::Hash() const {
  uint64_t h = plan == nullptr ? 0 : plan->fingerprint();
  h = HashCombine(h, env);
  h = HashCombine(h, contract);
  if (dep_names != nullptr) {
    for (const std::string& name : *dep_names) {
      h = HashCombine(h, HashString(name));
    }
  }
  for (uint64_t v : dep_versions) h = HashCombine(h, v);
  return h;
}

uint64_t ApproxRelationBytes(const Relation& r) {
  // Fixed per-tuple overhead (vector header + small-vector slack) plus the
  // variant payload per value; strings add their heap storage. Deterministic
  // by construction: a function of the tuple contents only.
  uint64_t bytes = 64 + 32 * static_cast<uint64_t>(r.schema().size());
  for (const Tuple& t : r.tuples()) {
    bytes += 32;
    for (size_t i = 0; i < t.size(); ++i) {
      const Value& v = t.at(i);
      bytes += 24;
      if (v.type() == ValueType::kString) bytes += v.AsString().size();
    }
  }
  return bytes;
}

uint64_t ContractFingerprint(const QueryContract& contract,
                             uint64_t executor_tag) {
  uint64_t h = HashMix64(static_cast<uint64_t>(contract.result_type) + 1);
  for (const SortKey& k : contract.order_by) {
    h = HashCombine(h, HashString(k.attr));
    h = HashCombine(h, k.ascending ? 1 : 2);
  }
  return HashCombine(h, executor_tag);
}

SubplanCacheKey MakeSubplanCacheKey(const PlanPtr& node, const NodeInfo& info,
                                    const Catalog& catalog, uint64_t env,
                                    uint64_t contract_fp) {
  SubplanCacheKey key;
  key.plan = node;
  key.env = env;
  key.contract = contract_fp;
  key.dep_names = info.relations;
  const std::vector<std::string>& names = info.relation_deps();
  key.dep_versions.reserve(names.size());
  for (const std::string& name : names) {
    key.dep_versions.push_back(catalog.relation_version(name));
  }
  return key;
}

SubplanResultCache::SubplanResultCache(uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

bool SubplanResultCache::KeysEqual(const SubplanCacheKey& a,
                                   const SubplanCacheKey& b) {
  // Fingerprint equality is necessary but not sufficient: confirm the plans
  // structurally, per the codebase-wide hashing contract.
  if (a.env != b.env || a.contract != b.contract) return false;
  if (a.dep_versions != b.dep_versions) return false;
  static const std::vector<std::string> kNoNames;
  const std::vector<std::string>& an =
      a.dep_names == nullptr ? kNoNames : *a.dep_names;
  const std::vector<std::string>& bn =
      b.dep_names == nullptr ? kNoNames : *b.dep_names;
  if (a.dep_names != b.dep_names && an != bn) return false;
  if (a.plan == b.plan) return true;
  if (a.plan == nullptr || b.plan == nullptr) return false;
  return a.plan->fingerprint() == b.plan->fingerprint() &&
         PlanNode::Equal(a.plan, b.plan);
}

std::shared_ptr<const Relation> SubplanResultCache::Lookup(
    const SubplanCacheKey& key) {
  const uint64_t h = key.Hash();
  std::lock_guard<std::mutex> lock(mu_);
  auto [lo, hi] = index_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    Lru::iterator e = it->second;
    if (!KeysEqual(e->key, key)) continue;
    ++hits_;
    lru_.splice(lru_.begin(), lru_, e);  // refresh recency; iterator stable
    return e->result;
  }
  ++misses_;
  return nullptr;
}

void SubplanResultCache::EvictLocked(Lru::iterator it) {
  auto [lo, hi] = index_.equal_range(it->hash);
  for (auto i = lo; i != hi; ++i) {
    if (i->second == it) {
      index_.erase(i);
      break;
    }
  }
  bytes_ -= it->bytes;
  lru_.erase(it);
  ++evictions_;
}

void SubplanResultCache::Insert(const SubplanCacheKey& key, Relation result) {
  const uint64_t bytes = ApproxRelationBytes(result);
  if (capacity_ == 0 || bytes > capacity_) return;
  const uint64_t h = key.Hash();
  auto snapshot = std::make_shared<const Relation>(std::move(result));

  std::lock_guard<std::mutex> lock(mu_);
  // Replace an identical key in place (concurrent sessions may race to
  // compute the same subplan; last writer wins, results are identical).
  auto [lo, hi] = index_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    Lru::iterator e = it->second;
    if (!KeysEqual(e->key, key)) continue;
    bytes_ = bytes_ - e->bytes + bytes;
    e->bytes = bytes;
    e->result = std::move(snapshot);
    lru_.splice(lru_.begin(), lru_, e);
    while (bytes_ > capacity_) EvictLocked(std::prev(lru_.end()));
    return;
  }

  lru_.push_front(Entry{key, h, bytes, std::move(snapshot)});
  index_.emplace(h, lru_.begin());
  bytes_ += bytes;
  ++insertions_;
  while (bytes_ > capacity_) EvictLocked(std::prev(lru_.end()));
}

void SubplanResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  evictions_ += lru_.size();
  index_.clear();
  lru_.clear();
  bytes_ = 0;
}

ResultCacheStats SubplanResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.capacity_bytes = capacity_;
  return s;
}

}  // namespace tqp
