// Literal reference implementations of the paper's recursive λ-calculus
// definitions (Section 2.5).
//
// "The definitions do not imply the actual implementation algorithms, but do
// constrain the implementation algorithms to produce the same results,
// taking order and duplicates into account." The production operators in
// evaluator.h use closed-form sweeps; these reference versions transcribe
// the recursions literally. Property tests assert list equality between the
// two on randomized inputs, and bench_fig3 compares their scaling.
#ifndef TQP_EXEC_REFERENCE_OPS_H_
#define TQP_EXEC_REFERENCE_OPS_H_

#include "core/relation.h"

namespace tqp {

/// rdupT per the paper's recursion: the head tuple's period is subtracted,
/// in place, from the first value-equivalent overlapping successor until none
/// remains; then the head is emitted and the tail processed recursively.
/// Worst-case quadratic; produces exactly the same list as EvalRdupT.
Relation EvalRdupTReference(const Relation& in);

/// coalT as the analogous greedy recursion: the head absorbs the first
/// value-equivalent adjacent successor (restarting the scan after each
/// merge), then is emitted. Produces exactly the same list as EvalCoalesce.
Relation EvalCoalesceReference(const Relation& in);

}  // namespace tqp

#endif  // TQP_EXEC_REFERENCE_OPS_H_
