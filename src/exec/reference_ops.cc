#include "exec/reference_ops.h"

#include <list>

#include "core/tuple.h"

namespace tqp {

Relation EvalRdupTReference(const Relation& in) {
  const Schema& schema = in.schema();
  std::list<Tuple> work(in.tuples().begin(), in.tuples().end());
  Relation out(schema);
  while (!work.empty()) {
    Tuple head = std::move(work.front());
    work.pop_front();
    Period head_period = TuplePeriod(head, schema);
    // OverT: find the first value-equivalent overlapping tuple; ChangeT:
    // replace it in place with (tuple \T head), i.e. 0–2 fragments. Repeat
    // until no such tuple remains (the recursion restarts on the modified
    // tail; fragments never overlap the head, so a forward scan suffices).
    for (auto it = work.begin(); it != work.end();) {
      if (!ValueEquivalent(head, *it, schema) ||
          !TuplePeriod(*it, schema).Overlaps(head_period)) {
        ++it;
        continue;
      }
      std::vector<Period> fragments =
          TuplePeriod(*it, schema).Subtract(head_period);
      it = work.erase(it);
      for (auto frag = fragments.rbegin(); frag != fragments.rend(); ++frag) {
        Tuple replacement = head;
        // Rebuild the fragment tuple from the erased tuple's values.
        // (head and the erased tuple are value-equivalent, so copying the
        // head's non-time values is equivalent.)
        SetTuplePeriod(&replacement, schema, *frag);
        it = work.insert(it, std::move(replacement));
      }
    }
    out.Append(std::move(head));
  }
  return out;
}

Relation EvalCoalesceReference(const Relation& in) {
  const Schema& schema = in.schema();
  std::list<Tuple> work(in.tuples().begin(), in.tuples().end());
  Relation out(schema);
  while (!work.empty()) {
    Tuple head = std::move(work.front());
    work.pop_front();
    bool merged = true;
    while (merged) {
      merged = false;
      Period head_period = TuplePeriod(head, schema);
      for (auto it = work.begin(); it != work.end(); ++it) {
        if (!ValueEquivalent(head, *it, schema)) continue;
        Period p = TuplePeriod(*it, schema);
        if (!head_period.Adjacent(p)) continue;
        SetTuplePeriod(&head, schema, head_period.Merge(p));
        work.erase(it);
        merged = true;  // the grown period may now meet earlier tuples
        break;
      }
    }
    out.Append(std::move(head));
  }
  return out;
}

}  // namespace tqp
