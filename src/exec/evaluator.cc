// Plan-tree evaluation, site simulation, and cost accounting.
#include "exec/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "backend/backend.h"
#include "backend/simulated_backend.h"
#include "core/json.h"
#include "core/profile.h"
#include "core/trace.h"
#include "exec/result_cache.h"

namespace tqp {

namespace {

/// Executor tags folded into the result-cache contract fingerprint so the
/// reference and vectorized executors never splice each other's
/// intermediates (their root results agree by contract; their cut-point
/// materializations are not required to).
constexpr uint64_t kRefExecutorTag = 1;

struct TreeEvaluator {
  const AnnotatedPlan& ann;
  const EngineConfig& config;
  ExecStats* stats;
  /// Contract+executor digest, fixed for the whole evaluation.
  uint64_t contract_fp =
      ContractFingerprint(ann.contract(), kRefExecutorTag);

  /// Cut points where cached results are probed/installed: the transfer
  /// boundaries (where the layered architecture materializes anyway) and
  /// the root. Finer-grained caching would tax cold runs with a copy per
  /// operator for results that can only be spliced at materialization
  /// boundaries anyway.
  bool IsCachePoint(const PlanPtr& node) const {
    return node->kind() == OpKind::kTransferS ||
           node->kind() == OpKind::kTransferD || node == ann.plan();
  }

  /// Per-node observability shell: times the node and stamps the profile /
  /// emits a span when either is requested, then delegates. The common
  /// (untraced, unprofiled) path is the two null tests.
  Result<Relation> Eval(const PlanPtr& node, ProfileNode* prof) {
    if (config.tracer == nullptr && prof == nullptr) {
      return EvalCached(node, nullptr);
    }
    std::chrono::steady_clock::time_point t0;
    if (prof != nullptr) t0 = std::chrono::steady_clock::now();
    TraceSpan span(config.tracer, "exec", OpKindName(node->kind()));
    Result<Relation> result = EvalCached(node, prof);
    if (prof != nullptr) {
      prof->op = node->Describe();
      prof->kind = OpKindName(node->kind());
      prof->wall_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      if (result.ok()) {
        prof->rows_out = static_cast<int64_t>(result.value().size());
      }
    }
    if (span.active() && result.ok()) {
      span.Arg("rows", static_cast<uint64_t>(result.value().size()));
    }
    return result;
  }

  Result<Relation> EvalCached(const PlanPtr& node, ProfileNode* prof) {
    if (config.result_cache == nullptr || !IsCachePoint(node)) {
      return EvalInner(node, prof);
    }
    SubplanCacheKey key =
        MakeSubplanCacheKey(node, ann.info(node.get()), ann.catalog(),
                            config.result_cache_env, contract_fp);
    auto cached = [&] {
      TraceSpan probe(config.tracer, "exec", "result_cache_probe");
      auto c = config.result_cache->Lookup(key);
      if (probe.active()) probe.Arg("hit", uint64_t{c ? 1u : 0u});
      return c;
    }();
    if (cached) {
      // Splice: the cached relation carries the bytes, list order, and
      // order annotation the subtree would reproduce; nothing below the
      // cut is accounted (it did not run).
      if (stats != nullptr) ++stats->result_cache_hits;
      if (prof != nullptr) prof->result_cache_hit = true;
      return *cached;
    }
    if (stats != nullptr) ++stats->result_cache_misses;
    TQP_ASSIGN_OR_RETURN(result, EvalInner(node, prof));
    config.result_cache->Insert(key, result);
    return result;
  }

  Result<Relation> EvalInner(const PlanPtr& node, ProfileNode* prof) {
    const NodeInfo& info = ann.info(node.get());
    // A transferS cut whose subtree the backend can run natively is fetched
    // as one SQL statement instead of being evaluated here; only the
    // transfer itself is accounted. A runtime failure falls back to the
    // in-engine path below — pushdown is an optimization, never a
    // correctness dependency.
    if (node->kind() == OpKind::kTransferS && config.backend != nullptr &&
        config.backend->SupportsPushdown()) {
      if (CanPushCut(*config.backend, node->child(0), ann)) {
        auto pushed = ExecuteCutPoint(*config.backend, node->child(0), ann,
                                      config);
        if (pushed.ok()) {
          Relation result = std::move(pushed.value());
          if (stats != nullptr) {
            int64_t rows = static_cast<int64_t>(result.size());
            ++stats->op_counts[OpKindName(node->kind())];
            stats->tuples_produced += rows;
            stats->tuples_transferred += rows;
            stats->stratum_work +=
                static_cast<double>(rows) * config.transfer_cost_per_tuple;
            ++stats->backend_pushdowns;
            stats->backend_rows += rows;
          }
          if (prof != nullptr) prof->backend_pushed = true;
          result.set_order(info.order);
          return result;
        }
        if (stats != nullptr) ++stats->backend_fallbacks;
      } else if (stats != nullptr) {
        // The serializer cannot express the subtree (distinct from a
        // runtime SQL failure, which counts as a fallback above).
        ++stats->backend_refusals;
      }
    }
    std::vector<Relation> inputs;
    for (const PlanPtr& c : node->children()) {
      ProfileNode* cp = nullptr;
      if (prof != nullptr) {
        prof->children.emplace_back();
        cp = &prof->children.back();
      }
      TQP_ASSIGN_OR_RETURN(r, Eval(c, cp));
      inputs.push_back(std::move(r));
    }
    // Capture input sizes before Apply: transfers move their input out.
    double in1 = inputs.empty() ? 0.0 : static_cast<double>(inputs[0].size());
    double in2 =
        inputs.size() < 2 ? 0.0 : static_cast<double>(inputs[1].size());
    if (prof != nullptr) prof->rows_in = static_cast<int64_t>(in1 + in2);
    TQP_ASSIGN_OR_RETURN(result, Apply(node, info, inputs));

    if (stats != nullptr) {
      ++stats->op_counts[OpKindName(node->kind())];
      stats->tuples_produced += static_cast<int64_t>(result.size());
      if (node->kind() == OpKind::kScan) {
        in1 = static_cast<double>(result.size());
      }
      double units = OpWorkUnits(node->kind(), in1, in2,
                                 static_cast<double>(result.size()));
      if (node->kind() == OpKind::kTransferS ||
          node->kind() == OpKind::kTransferD) {
        stats->tuples_transferred += static_cast<int64_t>(in1);
        stats->stratum_work += in1 * config.transfer_cost_per_tuple;
      } else if (info.site == Site::kDbms) {
        double penalty =
            IsTemporalOp(node->kind()) ? config.dbms_temporal_penalty : 1.0;
        stats->dbms_work += units * penalty;
      } else {
        stats->stratum_work += units * config.stratum_cpu_factor;
      }
    }

    // Model the DBMS's freedom over result order (Section 4.5). The
    // deterministic scramble lives in the simulated backend now; its output
    // is a function of the tuple multiset only — any dependence of
    // downstream results on the input *order* is thereby surfaced in tests.
    if (config.dbms_scrambles_order && info.site == Site::kDbms &&
        node->kind() != OpKind::kSort && node->kind() != OpKind::kScan &&
        node->kind() != OpKind::kTransferD) {
      TraceSpan scramble(config.tracer, "exec", "scramble");
      if (scramble.active()) {
        scramble.Arg("rows", static_cast<uint64_t>(result.size()));
      }
      SimulatedBackend::ScrambleRelation(&result, config.scramble_seed);
    }

    result.set_order(info.order);
    return result;
  }

  Result<Relation> Apply(const PlanPtr& node, const NodeInfo& info,
                         std::vector<Relation>& in) {
    switch (node->kind()) {
      case OpKind::kScan: {
        const CatalogEntry* e = ann.catalog().Find(node->rel_name());
        if (e == nullptr) return Status::NotFound(node->rel_name());
        return e->data;
      }
      case OpKind::kSelect:
        return EvalSelect(in[0], node->predicate());
      case OpKind::kProject:
        return EvalProject(in[0], node->projections(), info.schema);
      case OpKind::kUnionAll:
        return EvalUnionAll(in[0], in[1], info.schema);
      case OpKind::kUnion:
        return EvalUnion(in[0], in[1], info.schema);
      case OpKind::kProduct:
        return EvalProduct(in[0], in[1], info.schema);
      case OpKind::kDifference:
        return EvalDifference(in[0], in[1]);
      case OpKind::kAggregate:
        return EvalAggregate(in[0], node->group_by(), node->aggregates(),
                             info.schema);
      case OpKind::kRdup:
        return EvalRdup(in[0], info.schema);
      case OpKind::kProductT:
        return EvalProductT(in[0], in[1], info.schema);
      case OpKind::kDifferenceT:
        return EvalDifferenceT(in[0], in[1]);
      case OpKind::kAggregateT:
        return EvalAggregateT(in[0], node->group_by(), node->aggregates(),
                              info.schema);
      case OpKind::kRdupT:
        return EvalRdupT(in[0]);
      case OpKind::kUnionT:
        return EvalUnionT(in[0], in[1]);
      case OpKind::kSort:
        return EvalSort(in[0], node->sort_spec());
      case OpKind::kCoalesce:
        return EvalCoalesce(in[0]);
      case OpKind::kTransferS:
      case OpKind::kTransferD:
        return std::move(in[0]);
    }
    return Status::Error("unreachable operator kind");
  }
};

}  // namespace

std::string ExecStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("dbms_work").Double(dbms_work);
  w.Key("stratum_work").Double(stratum_work);
  w.Key("total_work").Double(total_work());
  w.Key("tuples_transferred").Int(tuples_transferred);
  w.Key("tuples_produced").Int(tuples_produced);
  w.Key("vec_batches").Int(vec_batches);
  w.Key("vec_materializations").Int(vec_materializations);
  w.Key("vec_rows").Int(vec_rows);
  w.Key("morsels").Int(morsels);
  w.Key("steals").Int(steals);
  w.Key("spill_bytes").Int(spill_bytes);
  w.Key("spill_runs").Int(spill_runs);
  w.Key("backend_pushdowns").Int(backend_pushdowns);
  w.Key("backend_rows").Int(backend_rows);
  w.Key("backend_fallbacks").Int(backend_fallbacks);
  w.Key("backend_refusals").Int(backend_refusals);
  w.Key("result_cache_hits").Int(result_cache_hits);
  w.Key("result_cache_misses").Int(result_cache_misses);
  w.Key("ops").BeginObject();
  for (const auto& [name, n] : op_counts) {
    w.Key(name).Int(n);
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

Result<Relation> Evaluate(const AnnotatedPlan& plan, const EngineConfig& config,
                          ExecStats* stats, ProfileNode* profile) {
  TreeEvaluator ev{plan, config, stats};
  return ev.Eval(plan.plan(), profile);
}

Result<Relation> EvaluatePlan(const PlanPtr& plan, const Catalog& catalog,
                              const EngineConfig& config, ExecStats* stats) {
  TQP_ASSIGN_OR_RETURN(
      ann, AnnotatedPlan::Make(plan, &catalog, QueryContract::Multiset()));
  return Evaluate(ann, config, stats);
}

}  // namespace tqp
