#include "exec/cost_model.h"

#include <algorithm>
#include <cmath>

namespace tqp {

double OpWorkUnits(OpKind kind, double in1, double in2, double out) {
  double n = in1 + in2 + 1.0;
  switch (kind) {
    case OpKind::kScan:
    case OpKind::kSelect:
    case OpKind::kProject:
    case OpKind::kUnionAll:
      return n + out;
    case OpKind::kUnion:
    case OpKind::kDifference:
    case OpKind::kRdup:
      return 2.0 * n + out;  // hash-based
    case OpKind::kProduct:
    case OpKind::kProductT:
      return in1 * in2 + n;
    case OpKind::kSort:
    case OpKind::kRdupT:
    case OpKind::kCoalesce:
    case OpKind::kDifferenceT:
    case OpKind::kUnionT:
    case OpKind::kAggregate:
    case OpKind::kAggregateT:
      return n * std::max(1.0, std::log2(n)) + out;
    case OpKind::kTransferS:
    case OpKind::kTransferD:
      return 0.0;  // charged separately per tuple
  }
  return n;
}

namespace {

double NodeCost(const PlanContext& plan, const PlanPtr& node,
                const EngineConfig& config) {
  const NodeInfo& info = plan.info(node.get());
  double in1 = node->arity() > 0
                   ? plan.info(node->child(0).get()).cardinality
                   : info.cardinality;
  double in2 =
      node->arity() > 1 ? plan.info(node->child(1).get()).cardinality : 0.0;
  const BackendCostProfile* cal =
      (config.calibration != nullptr && config.calibration->calibrated)
          ? config.calibration
          : nullptr;
  if (node->kind() == OpKind::kTransferS ||
      node->kind() == OpKind::kTransferD) {
    return in1 * (cal != nullptr ? cal->transfer_cost_per_tuple
                                 : config.transfer_cost_per_tuple);
  }
  double units = OpWorkUnits(node->kind(), in1, in2, info.cardinality);
  if (info.site == Site::kDbms) {
    if (cal != nullptr) {
      return units * cal->dbms_op_factor[static_cast<size_t>(node->kind())];
    }
    return units * (IsTemporalOp(node->kind()) ? config.dbms_temporal_penalty
                                               : 1.0);
  }
  return units * config.stratum_cpu_factor;
}

double SubtreeCost(const PlanContext& plan, const PlanPtr& node,
                   const EngineConfig& config) {
  double total = NodeCost(plan, node, config);
  for (const PlanPtr& c : node->children()) {
    total += SubtreeCost(plan, c, config);
  }
  return total;
}

}  // namespace

double EstimatePlanCost(const AnnotatedPlan& plan, const EngineConfig& config) {
  return SubtreeCost(plan, plan.plan(), config);
}

double EstimatePlanCost(const PlanPtr& root, const PlanContext& ctx,
                        const EngineConfig& config) {
  return SubtreeCost(ctx, root, config);
}

}  // namespace tqp
