// Physical evaluation of plans with the paper's exact list semantics.
//
// Every operation of Table 1 is implemented so its result — as a *list* — is
// the one the paper's λ-calculus definitions prescribe, including which
// occurrence survives duplicate elimination, the order of difference
// fragments, and the in-place replacement discipline of rdupT (Section 2.5).
//
// The evaluator also simulates the layered architecture: operators annotated
// with the DBMS site execute in the "DBMS engine", whose non-sort results
// have no guaranteed order (Section 4.5). To keep that honest rather than
// notational, the engine can deterministically shuffle DBMS results
// (EngineConfig::dbms_scrambles_order), so any rule or plan that incorrectly
// relies on DBMS order fails tests. Cost accounting (simulated work units and
// transfer volume) feeds the stratum-vs-DBMS placement benchmarks.
#ifndef TQP_EXEC_EVALUATOR_H_
#define TQP_EXEC_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "algebra/derivation.h"
#include "algebra/plan.h"
#include "core/catalog.h"
#include "exec/cost_model.h"

namespace tqp {

/// Simulated and measured execution statistics. The work/transfer/operator
/// counters are filled identically by the reference evaluator and the
/// vectorized engine (src/vexec) — both compute them from the same
/// OpWorkUnits formulas; the vec_* counters are only non-zero on the
/// vectorized path.
struct ExecStats {
  /// Abstract work units, split by site.
  double dbms_work = 0.0;
  double stratum_work = 0.0;
  /// Tuples crossing TS/TD operations.
  int64_t tuples_transferred = 0;
  /// Tuples produced by every operator (intermediate result volume).
  int64_t tuples_produced = 0;
  /// Operator invocations by kind name.
  std::map<std::string, int64_t> op_counts;

  /// Column batches consumed by the vectorized executor (input rows per
  /// VexecOptions::batch_size, summed over operators). 0 on the reference
  /// path.
  int64_t vec_batches = 0;
  /// Columnar operator-output materializations, including the DBMS order
  /// scramble rebuilds. 0 on the reference path.
  int64_t vec_materializations = 0;
  /// Rows produced through the vectorized pipeline (the batch-engine twin
  /// of tuples_produced). 0 on the reference path.
  int64_t vec_rows = 0;

  /// Morsels executed / morsels obtained by stealing, from the vectorized
  /// executor's work-stealing scheduler (VexecOptions::threads > 1).
  /// Telemetry only — both depend on thread timing and are excluded from
  /// every determinism contract. 0 on the reference and serial paths.
  int64_t morsels = 0;
  int64_t steals = 0;
  /// Bytes written to spill files and spill units created (external-sort
  /// runs + class-table partitions) under VexecOptions::memory_budget.
  /// Deterministic for a fixed plan/catalog/options. 0 when nothing spills.
  int64_t spill_bytes = 0;
  int64_t spill_runs = 0;

  /// Conventional cut subplans executed natively by the backend (the subtree
  /// under a transferS fetched as one SQL statement), rows fetched across
  /// that boundary, and pushdown attempts abandoned at runtime in favor of
  /// in-engine evaluation. All 0 under the simulated backend. Nodes inside a
  /// pushed subtree are not individually accounted (no op_counts /
  /// tuples_produced / work entries) — the DBMS ran them as one statement.
  int64_t backend_pushdowns = 0;
  int64_t backend_rows = 0;
  int64_t backend_fallbacks = 0;
  /// Pushdown-eligible cut points the SQL serializer refused up front
  /// (inexpressible subtree — e.g. temporal operators below the cut), as
  /// opposed to backend_fallbacks, which counts pushdowns abandoned *after*
  /// a runtime SQL error. Only non-zero when a pushdown-capable backend is
  /// configured.
  int64_t backend_refusals = 0;

  /// Subplan result-cache probes at transfer/root cut points, when the
  /// engine runs with incremental execution enabled. A hit splices the
  /// cached relation and skips the whole subtree (no op_counts / work
  /// entries below the cut, like a backend pushdown). Both 0 when the
  /// cache is disabled.
  int64_t result_cache_hits = 0;
  int64_t result_cache_misses = 0;

  double total_work() const { return dbms_work + stratum_work; }

  /// One flat JSON object with every counter above (op_counts nested as
  /// "ops"). The single rendering of execution statistics: the service
  /// layer's response frames and the bench JSON embed this same string, so
  /// the two cannot drift apart.
  std::string ToJson() const;
};

struct ProfileNode;

/// Evaluates an annotated plan against its catalog. The returned relation's
/// order annotation matches the derivation's static order.
///
/// `profile`, when non-null, is filled as the root of a per-plan-node
/// execution profile (core/profile.h) mirroring the plan tree — the EXPLAIN
/// ANALYZE surface. Tracing rides on config.tracer independently.
Result<Relation> Evaluate(const AnnotatedPlan& plan,
                          const EngineConfig& config = {},
                          ExecStats* stats = nullptr,
                          ProfileNode* profile = nullptr);

/// Convenience: annotates (with a multiset contract) and evaluates a raw
/// plan tree. Intended for tests of operator semantics.
Result<Relation> EvaluatePlan(const PlanPtr& plan, const Catalog& catalog,
                              const EngineConfig& config = {},
                              ExecStats* stats = nullptr);

// ---- Direct operator-level entry points (shared with tests/benches). ----

/// σ_P: keeps tuples satisfying the predicate; retains order and duplicates.
Relation EvalSelect(const Relation& in, const ExprPtr& predicate);

/// π_{items}: computes each item per tuple; the paper's renaming conventions
/// (snapshot result when T1/T2 are not kept) are the planner's concern — this
/// simply materializes `schema` columns via the expressions.
Result<Relation> EvalProject(const Relation& in,
                             const std::vector<ProjItem>& items,
                             const Schema& out_schema);

/// ⊎: concatenation (union ALL).
Relation EvalUnionAll(const Relation& l, const Relation& r, Schema out_schema);

/// ∪: max-multiplicity union [Albert 1991]: l followed by the occurrences of
/// r exceeding their multiplicity in l.
Relation EvalUnion(const Relation& l, const Relation& r, Schema out_schema);

/// ×: Cartesian product, left-major order, product attribute renaming.
Relation EvalProduct(const Relation& l, const Relation& r, Schema out_schema);

/// \: multiset difference; for each right tuple the first remaining matching
/// left occurrence is removed; survivors keep their order.
Relation EvalDifference(const Relation& l, const Relation& r);

/// ℵ: grouping + aggregates; groups emitted in order of first occurrence.
Result<Relation> EvalAggregate(const Relation& in,
                               const std::vector<std::string>& group_by,
                               const std::vector<AggSpec>& aggs,
                               const Schema& out_schema);

/// rdup: keeps the first occurrence of each tuple; result schema renames
/// T1/T2 to 1.T1/1.T2 for temporal inputs (Figure 3).
Relation EvalRdup(const Relation& in, Schema out_schema);

/// sort_A: stable sort.
Relation EvalSort(const Relation& in, const SortSpec& spec);

/// ×T: pairs with overlapping periods; keeps both argument periods as
/// 1.T1..2.T2 and the overlap as T1/T2.
Relation EvalProductT(const Relation& l, const Relation& r, Schema out_schema);

/// \T: snapshot-reducible temporal multiset difference (see DESIGN.md §4.4).
Relation EvalDifferenceT(const Relation& l, const Relation& r);

/// ∪T: snapshot-reducible max-multiplicity union: l ⊎ (r \T l).
Relation EvalUnionT(const Relation& l, const Relation& r);

/// ℵT: snapshot-reducible aggregation over maximal constancy intervals.
Result<Relation> EvalAggregateT(const Relation& in,
                                const std::vector<std::string>& group_by,
                                const std::vector<AggSpec>& aggs,
                                const Schema& out_schema);

/// rdupT: the paper's recursive definition (Section 2.5), implemented
/// iteratively: the head tuple's period is subtracted, in place, from every
/// value-equivalent overlapping successor.
Relation EvalRdupT(const Relation& in);

/// coalT: merges value-equivalent tuples with adjacent periods; the merged
/// tuple stays at the position of its earliest fragment.
Relation EvalCoalesce(const Relation& in);

}  // namespace tqp

#endif  // TQP_EXEC_EVALUATOR_H_
