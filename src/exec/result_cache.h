// Versioned subplan result cache for incremental prepared-query re-execution.
//
// When the catalog bumps one relation, a prepared plan only needs to recompute
// the subplans that transitively read it; everything else can be spliced in
// from a cache of earlier, byte-identical results. An entry is keyed on
//
//   (subplan identity, engine environment, query contract,
//    exact per-relation catalog versions of every base relation it reads)
//
// so a cached result is served only when re-running the subplan from scratch
// would reproduce it byte for byte:
//
//   * subplan identity — the hash-consed PlanNode fingerprint, confirmed
//     structurally on every probe (fingerprints are never trusted blindly);
//   * environment — a caller-provided fingerprint covering everything outside
//     the plan that shapes executor output: DBMS scramble mode and seed,
//     backend identity, and the backend calibration fingerprint;
//   * contract — the query contract (result type + order) under which the
//     plan was annotated; annotation decides coalescing/sort enforcement, so
//     the same tree under a different contract may evaluate differently;
//   * dependency versions — the sorted relation-dependency set from
//     NodeInfo::relation_deps() paired with Catalog::relation_version()
//     stamps. An update of relation A never matches (or evicts) entries
//     that read only relation B; stale entries age out via the LRU bound.
//
// The cache is byte-bounded LRU under a single mutex and is shared by all
// sessions of an Engine across both executors. Entries hold immutable
// std::shared_ptr<const Relation> snapshots, so a hit can outlive eviction.
#ifndef TQP_EXEC_RESULT_CACHE_H_
#define TQP_EXEC_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/derivation.h"
#include "algebra/plan.h"
#include "core/catalog.h"
#include "core/relation.h"

namespace tqp {

/// Lifetime counters, readable while the cache is in use.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Current occupancy.
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t capacity_bytes = 0;
};

/// The full identity of one cached subplan result. `dep_names` must be sorted
/// and deduplicated (NodeInfo::relation_deps() already is) and `dep_versions`
/// is parallel to it.
struct SubplanCacheKey {
  PlanPtr plan;
  uint64_t env = 0;
  uint64_t contract = 0;
  std::shared_ptr<const std::vector<std::string>> dep_names;
  std::vector<uint64_t> dep_versions;

  /// Combined hash over every component; cheap enough to recompute per probe.
  uint64_t Hash() const;
};

/// Deterministic in-memory footprint estimate used for the byte bound.
/// Exact enough that the LRU budget tracks real usage; cheap enough to run
/// on every insertion.
uint64_t ApproxRelationBytes(const Relation& r);

/// Stable digest of a query contract (result type + ORDER BY spec) folded
/// with an executor tag. The tag keeps results segregated per executor:
/// both executors are list-identical at the root by contract, but nothing
/// requires their *intermediate* materializations to agree byte for byte,
/// so cross-executor splicing is never attempted.
uint64_t ContractFingerprint(const QueryContract& contract,
                             uint64_t executor_tag);

/// Builds the complete key for `node`: dependency names come from the
/// derived NodeInfo, versions are stamped from `catalog` (the same snapshot
/// the executor reads under the engine's shared lock, so the vector is
/// consistent with the data the subplan would scan).
SubplanCacheKey MakeSubplanCacheKey(const PlanPtr& node, const NodeInfo& info,
                                    const Catalog& catalog, uint64_t env,
                                    uint64_t contract_fp);

class SubplanResultCache {
 public:
  /// `capacity_bytes` == 0 disables insertion entirely (every probe misses).
  explicit SubplanResultCache(uint64_t capacity_bytes);

  SubplanResultCache(const SubplanResultCache&) = delete;
  SubplanResultCache& operator=(const SubplanResultCache&) = delete;

  /// Returns the cached result for `key`, or nullptr. A hit refreshes LRU
  /// recency. The returned snapshot is immutable and safe to hold after
  /// eviction or Clear().
  std::shared_ptr<const Relation> Lookup(const SubplanCacheKey& key);

  /// Stores `result` under `key`, replacing any entry with the identical key
  /// and evicting from the LRU tail until the byte budget holds. Results
  /// larger than the whole budget are not cached.
  void Insert(const SubplanCacheKey& key, Relation result);

  /// Drops every entry (counted as evictions). Counters survive.
  void Clear();

  ResultCacheStats stats() const;

 private:
  struct Entry {
    SubplanCacheKey key;
    uint64_t hash = 0;
    uint64_t bytes = 0;
    std::shared_ptr<const Relation> result;
  };
  using Lru = std::list<Entry>;

  static bool KeysEqual(const SubplanCacheKey& a, const SubplanCacheKey& b);
  /// Unlinks `it` from the index and LRU list. Caller holds `mu_`.
  void EvictLocked(Lru::iterator it);

  const uint64_t capacity_;

  mutable std::mutex mu_;
  Lru lru_;  // front = most recent
  std::unordered_multimap<uint64_t, Lru::iterator> index_;
  uint64_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace tqp

#endif  // TQP_EXEC_RESULT_CACHE_H_
