// TQL parser: a recursive-descent parser for the temporal SQL subset.
//
// Grammar (keywords case-insensitive):
//
//   query      := select_stmt (set_op select_stmt)* [ORDER BY order_list]
//   set_op     := UNION [ALL] | EXCEPT [ALL] | MAXUNION
//   select_stmt:= [VALIDTIME [COALESCED]] SELECT [DISTINCT] select_list
//                 FROM ident (',' ident)* [WHERE expr] [GROUP BY ident_list]
//   select_list:= '*' | sel_item (',' sel_item)*
//   sel_item   := agg_call [AS ident] | expr [AS ident]
//   agg_call   := (COUNT '(' '*' ')') | (COUNT|SUM|MIN|MAX|AVG) '(' ident ')'
//   expr       := standard precedence: OR < AND < NOT < cmp < add < mul;
//                 primaries: ident, literals, '(' expr ')',
//                 OVERLAPS '(' expr ',' expr ',' expr ',' expr ')'
//   order_list := ident [ASC|DESC] (',' ident [ASC|DESC])*
//
// VALIDTIME marks a statement as temporally reducible: its operations are
// translated to their temporal counterparts (Section 2.2's first statement
// class). Without VALIDTIME, time attributes are ordinary data (the second
// class). COALESCED additionally requests a coalesced result.
#ifndef TQP_TQL_PARSER_H_
#define TQP_TQL_PARSER_H_

#include <string>
#include <vector>

#include "algebra/expr.h"
#include "core/common.h"
#include "core/schema.h"

namespace tqp {

/// One item of a select list.
struct SelectItem {
  enum class Kind { kExpr, kAggregate };
  Kind kind = Kind::kExpr;
  ExprPtr expr;     // kExpr
  AggSpec agg;      // kAggregate
  std::string alias;  // output name; derived from the expression if empty
};

/// One parsed SELECT statement.
struct SelectStmt {
  bool validtime = false;
  bool coalesced = false;
  bool distinct = false;
  bool star = false;
  std::vector<SelectItem> items;
  std::vector<std::string> from;
  ExprPtr where;  // may be null
  std::vector<std::string> group_by;
};

/// A full query: SELECT statements combined with set operations, plus the
/// outermost ORDER BY.
struct QueryAst {
  enum class SetOp { kUnion, kUnionAll, kExcept, kExceptAll, kMaxUnion };

  std::vector<SelectStmt> stmts;
  std::vector<SetOp> ops;  // ops[i] combines stmts[i] and stmts[i+1]
  SortSpec order_by;
};

/// Parses a TQL query string.
Result<QueryAst> ParseQuery(const std::string& input);

}  // namespace tqp

#endif  // TQP_TQL_PARSER_H_
