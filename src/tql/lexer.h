// Lexer for TQL, the small temporal SQL subset of the front-end.
#ifndef TQP_TQL_LEXER_H_
#define TQP_TQL_LEXER_H_

#include <string>
#include <vector>

#include "core/common.h"

namespace tqp {

enum class TokenKind {
  kKeyword,     // SELECT, FROM, ... (uppercased)
  kIdentifier,  // relation/attribute names (case-preserved)
  kInteger,
  kFloat,
  kString,      // 'quoted'
  kSymbol,      // punctuation and operators: ( ) , * = <> < <= > >= + - / .
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // keyword/symbol text, identifier name, literal lexeme
  size_t position = 0;  // byte offset, for error messages

  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  bool IsSymbol(const char* s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
};

/// Tokenizes a TQL string. Keywords are recognized case-insensitively and
/// normalized to upper case; anything identifier-shaped that is not a
/// keyword stays an identifier (attribute names like "1.T1" are lexed as
/// identifier tokens via the dotted-name rule). SQL-style "--" line
/// comments are skipped like whitespace.
Result<std::vector<Token>> Lex(const std::string& input);

/// A canonical single-string rendering of a token stream (kind tags plus
/// length-prefixed token text; the kEnd sentinel is excluded). Two inputs
/// produce the same key iff they lex to the same tokens, so whitespace,
/// comment, and keyword-case variants of one query collapse to one key —
/// the Engine keys its plan cache on this instead of the raw query text.
std::string TokenStreamKey(const std::vector<Token>& tokens);

}  // namespace tqp

#endif  // TQP_TQL_LEXER_H_
