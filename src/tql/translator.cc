#include "tql/translator.h"

#include <algorithm>

#include "core/trace.h"

namespace tqp {

namespace {

// Builds the relational core of one SELECT statement: scans, ×/×T chain,
// σ, and π or ℵ/ℵT. DISTINCT/COALESCED are applied at the query level.
Result<PlanPtr> TranslateCore(const SelectStmt& stmt, const Catalog& catalog) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM list is empty");
  }
  PlanPtr plan;
  for (const std::string& rel : stmt.from) {
    const CatalogEntry* entry = catalog.Find(rel);
    if (entry == nullptr) {
      return Status::NotFound("relation '" + rel + "'");
    }
    if (stmt.validtime && !entry->data.IsTemporal()) {
      return Status::InvalidArgument("VALIDTIME query over non-temporal '" +
                                     rel + "'");
    }
    PlanPtr scan = PlanNode::Scan(rel);
    if (!plan) {
      plan = scan;
    } else {
      plan = stmt.validtime ? PlanNode::ProductT(plan, scan)
                            : PlanNode::Product(plan, scan);
    }
  }
  if (stmt.where) {
    plan = PlanNode::Select(plan, stmt.where);
  }

  bool has_aggs = false;
  for (const SelectItem& item : stmt.items) {
    if (item.kind == SelectItem::Kind::kAggregate) has_aggs = true;
  }
  if (!stmt.group_by.empty() && !has_aggs) {
    return Status::InvalidArgument("GROUP BY without aggregates");
  }

  if (has_aggs) {
    std::vector<AggSpec> aggs;
    for (const SelectItem& item : stmt.items) {
      if (item.kind == SelectItem::Kind::kAggregate) {
        aggs.push_back(item.agg);
        continue;
      }
      if (item.expr->kind() != ExprKind::kAttr) {
        return Status::InvalidArgument(
            "non-aggregate select item must be a grouping attribute");
      }
      bool grouped =
          std::find(stmt.group_by.begin(), stmt.group_by.end(),
                    item.expr->attr_name()) != stmt.group_by.end();
      if (!grouped) {
        return Status::InvalidArgument("select item '" +
                                       item.expr->attr_name() +
                                       "' is not in GROUP BY");
      }
    }
    plan = stmt.validtime
               ? PlanNode::AggregateT(plan, stmt.group_by, aggs)
               : PlanNode::Aggregate(plan, stmt.group_by, aggs);
    // Re-project to the select-list order and aliases.
    std::vector<ProjItem> items;
    for (const SelectItem& item : stmt.items) {
      if (item.kind == SelectItem::Kind::kAggregate) {
        items.push_back(ProjItem::Pass(item.agg.out_name));
      } else {
        items.push_back(
            ProjItem::Rename(item.expr->attr_name(), item.alias));
      }
    }
    if (stmt.validtime) {
      items.push_back(ProjItem::Pass(kT1));
      items.push_back(ProjItem::Pass(kT2));
    }
    return PlanNode::Project(plan, std::move(items));
  }

  if (stmt.star) return plan;

  std::vector<ProjItem> items;
  bool has_t1 = false, has_t2 = false;
  for (const SelectItem& item : stmt.items) {
    items.push_back(ProjItem{item.expr, item.alias});
    if (item.alias == kT1) has_t1 = true;
    if (item.alias == kT2) has_t2 = true;
  }
  if (stmt.validtime) {
    // A snapshot-reducible statement yields a temporal result: the time
    // attributes ride along implicitly.
    if (!has_t1) items.push_back(ProjItem::Pass(kT1));
    if (!has_t2) items.push_back(ProjItem::Pass(kT2));
  }
  return PlanNode::Project(plan, std::move(items));
}

}  // namespace

Result<TranslatedQuery> TranslateQuery(const QueryAst& ast,
                                       const Catalog& catalog,
                                       const TranslatorOptions& options) {
  if (ast.stmts.empty()) return Status::InvalidArgument("empty query");
  const SelectStmt& head = ast.stmts[0];
  // VALIDTIME on the leading statement scopes over the whole set-operation
  // query (TSQL2 style; the paper's example writes it once). A later
  // statement may not introduce VALIDTIME on its own.
  bool vt = head.validtime;
  for (size_t i = 1; i < ast.stmts.size(); ++i) {
    if (ast.stmts[i].validtime && !vt) {
      return Status::InvalidArgument(
          "VALIDTIME must be specified on the leading statement");
    }
  }

  TQP_ASSIGN_OR_RETURN(first, TranslateCore(head, catalog));
  PlanPtr plan = first;
  for (size_t i = 0; i < ast.ops.size(); ++i) {
    SelectStmt branch = ast.stmts[i + 1];
    branch.validtime = vt;  // inherit the query-level temporal semantics
    TQP_ASSIGN_OR_RETURN(rhs, TranslateCore(branch, catalog));
    switch (ast.ops[i]) {
      case QueryAst::SetOp::kUnionAll:
        plan = PlanNode::UnionAll(plan, rhs);
        break;
      case QueryAst::SetOp::kUnion:
        plan = vt ? PlanNode::RdupT(PlanNode::UnionAll(plan, rhs))
                  : PlanNode::Rdup(PlanNode::UnionAll(plan, rhs));
        break;
      case QueryAst::SetOp::kMaxUnion:
        plan = vt ? PlanNode::UnionT(plan, rhs) : PlanNode::Union(plan, rhs);
        break;
      case QueryAst::SetOp::kExcept:
        // Temporal difference requires a snapshot-duplicate-free left
        // argument (Section 2.1); conventional EXCEPT deduplicates both
        // sides (so the renamed rdup schemas agree).
        plan = vt ? PlanNode::DifferenceT(PlanNode::RdupT(plan), rhs)
                  : PlanNode::Difference(PlanNode::Rdup(plan),
                                         PlanNode::Rdup(rhs));
        break;
      case QueryAst::SetOp::kExceptAll:
        plan = vt ? PlanNode::DifferenceT(plan, rhs)
                  : PlanNode::Difference(plan, rhs);
        break;
    }
  }

  if (head.distinct) {
    plan = vt ? PlanNode::RdupT(plan) : PlanNode::Rdup(plan);
  }
  if (head.coalesced) {
    plan = PlanNode::Coalesce(plan);
  }
  if (!ast.order_by.empty()) {
    plan = PlanNode::Sort(plan, ast.order_by);
  }
  if (options.layered) {
    plan = PlanNode::TransferS(plan);
  }

  TranslatedQuery out;
  out.plan = plan;
  if (!ast.order_by.empty()) {
    out.contract = QueryContract::List(ast.order_by);
  } else if (head.distinct) {
    out.contract = QueryContract::Set();
  } else {
    out.contract = QueryContract::Multiset();
  }
  // Fail fast on malformed queries (unknown attributes, schema mismatches).
  TQP_ASSIGN_OR_RETURN(ann,
                       AnnotatedPlan::Make(plan, &catalog, out.contract));
  (void)ann;
  return out;
}

Result<TranslatedQuery> CompileQuery(const std::string& text,
                                     const Catalog& catalog,
                                     const TranslatorOptions& options) {
  auto parsed = [&] {
    // Lexing is folded into the parser; one span covers both.
    TraceSpan span(options.tracer, "tql", "parse");
    if (span.active()) span.Arg("bytes", static_cast<uint64_t>(text.size()));
    return ParseQuery(text);
  }();
  if (!parsed.ok()) return parsed.status();
  TraceSpan span(options.tracer, "tql", "translate");
  return TranslateQuery(parsed.value(), catalog, options);
}

}  // namespace tqp
