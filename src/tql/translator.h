// Translation of parsed TQL queries into initial algebra plans.
//
// This realizes the "straightforward mapping of the user-level query to an
// initial algebra expression" of Section 2.1 and fixes the ≡SQL contract of
// Definition 5.1 from the outermost DISTINCT / ORDER BY:
//
//   * FROM lists become chains of × (or ×T under VALIDTIME),
//   * WHERE becomes σ,
//   * the select list becomes π (T1/T2 are appended under VALIDTIME) or
//     ℵ/ℵT when aggregates or GROUP BY are present,
//   * EXCEPT becomes \ (or \T with an rdupT inserted on the left argument —
//     temporal difference requires a snapshot-duplicate-free left input),
//   * UNION becomes rdup(⊎) / rdupT(⊎), UNION ALL becomes ⊎, and MAXUNION
//     exposes the algebra's max-multiplicity ∪ / ∪T,
//   * DISTINCT adds rdup/rdupT, COALESCED adds coalT, ORDER BY adds sort,
//   * in the layered architecture the whole plan is initially computed in
//     the DBMS with one final T_S on top (exactly Figure 2(a)).
#ifndef TQP_TQL_TRANSLATOR_H_
#define TQP_TQL_TRANSLATOR_H_

#include <string>

#include "algebra/derivation.h"
#include "algebra/plan.h"
#include "core/catalog.h"
#include "tql/parser.h"

namespace tqp {

class Tracer;

/// Translation options.
struct TranslatorOptions {
  /// Layered architecture: emit a final T_S so the initial plan executes in
  /// the DBMS (Figure 2(a)). When false, plans target a stand-alone temporal
  /// DBMS: no transfers are emitted and scans are placed at the stratum.
  bool layered = true;
  /// Per-query span recorder (core/trace.h); non-owning, nullptr = untraced.
  /// CompileQuery emits parse and translate spans.
  Tracer* tracer = nullptr;
};

/// A translated query: the initial plan plus its ≡SQL contract.
struct TranslatedQuery {
  PlanPtr plan;
  QueryContract contract;
};

/// Translates a parsed query against a catalog.
Result<TranslatedQuery> TranslateQuery(const QueryAst& ast,
                                       const Catalog& catalog,
                                       const TranslatorOptions& options = {});

/// Parses and translates in one step.
Result<TranslatedQuery> CompileQuery(const std::string& text,
                                     const Catalog& catalog,
                                     const TranslatorOptions& options = {});

}  // namespace tqp

#endif  // TQP_TQL_TRANSLATOR_H_
