#include "tql/lexer.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace tqp {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "SELECT", "DISTINCT", "FROM",     "WHERE",  "GROUP",    "BY",
      "ORDER",  "ASC",      "DESC",     "AND",    "OR",       "NOT",
      "UNION",  "ALL",      "EXCEPT",   "AS",     "VALIDTIME", "COALESCED",
      "COUNT",  "SUM",      "MIN",      "MAX",    "AVG",      "OVERLAPS",
      "MAXUNION",
  };
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // SQL-style "--" line comments lex as whitespace.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      i += 2;
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string word = input.substr(start, i - start);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
      if (Keywords().count(upper) > 0) {
        out.push_back(Token{TokenKind::kKeyword, upper, start});
      } else {
        out.push_back(Token{TokenKind::kIdentifier, word, start});
      }
      continue;
    }
    // Dotted names like "1.T1" / "2.Dept" (product-renamed attributes).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n && IsIdentStart(input[j + 1])) {
        size_t k = j + 1;
        while (k < n && IsIdentChar(input[k])) ++k;
        out.push_back(
            Token{TokenKind::kIdentifier, input.substr(start, k - start),
                  start});
        i = k;
        continue;
      }
      // Numeric literal.
      bool is_float = false;
      i = j;
      if (i < n && input[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      out.push_back(Token{is_float ? TokenKind::kFloat : TokenKind::kInteger,
                          input.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      while (i < n && input[i] != '\'') {
        value += input[i];
        ++i;
      }
      if (i >= n) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      ++i;  // closing quote
      out.push_back(Token{TokenKind::kString, value, start});
      continue;
    }
    // Multi-char operators first.
    auto two = [&](const char* s) {
      return i + 1 < n && input[i] == s[0] && input[i + 1] == s[1];
    };
    if (two("<>") || two("<=") || two(">=") || two("!=")) {
      std::string sym = input.substr(i, 2);
      if (sym == "!=") sym = "<>";
      out.push_back(Token{TokenKind::kSymbol, sym, start});
      i += 2;
      continue;
    }
    if (std::string("(),*=<>+-/.").find(c) != std::string::npos) {
      out.push_back(Token{TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(start));
  }
  out.push_back(Token{TokenKind::kEnd, "", n});
  return out;
}

std::string TokenStreamKey(const std::vector<Token>& tokens) {
  std::string key;
  key.reserve(tokens.size() * 8);
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kEnd) break;
    // kind tag + length-prefixed text: length prefixes make the rendering
    // injective even when token text contains any byte (string literals are
    // unrestricted), so two different token streams can never share a key.
    key += static_cast<char>('a' + static_cast<int>(token.kind));
    key += std::to_string(token.text.size());
    key += ':';
    key += token.text;
  }
  return key;
}

}  // namespace tqp
