#include "tql/parser.h"

#include "tql/lexer.h"

namespace tqp {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QueryAst> Query() {
    QueryAst ast;
    TQP_ASSIGN_OR_RETURN(first, Stmt());
    ast.stmts.push_back(std::move(first));
    while (true) {
      if (Accept("UNION")) {
        if (Accept("ALL")) {
          ast.ops.push_back(QueryAst::SetOp::kUnionAll);
        } else {
          ast.ops.push_back(QueryAst::SetOp::kUnion);
        }
      } else if (Accept("EXCEPT")) {
        if (Accept("ALL")) {
          ast.ops.push_back(QueryAst::SetOp::kExceptAll);
        } else {
          ast.ops.push_back(QueryAst::SetOp::kExcept);
        }
      } else if (Accept("MAXUNION")) {
        ast.ops.push_back(QueryAst::SetOp::kMaxUnion);
      } else {
        break;
      }
      TQP_ASSIGN_OR_RETURN(next, Stmt());
      ast.stmts.push_back(std::move(next));
    }
    if (Accept("ORDER")) {
      TQP_RETURN_IF_ERROR(Expect("BY"));
      while (true) {
        TQP_ASSIGN_OR_RETURN(name, Identifier("ORDER BY attribute"));
        bool asc = true;
        if (Accept("DESC")) {
          asc = false;
        } else {
          Accept("ASC");
        }
        ast.order_by.push_back(SortKey{name, asc});
        if (!AcceptSymbol(",")) break;
      }
    }
    if (cur().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing input at offset " +
                                     std::to_string(cur().position) + ": '" +
                                     cur().text + "'");
    }
    return ast;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }

  bool Accept(const char* kw) {
    if (cur().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptSymbol(const char* s) {
    if (cur().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(const char* kw) {
    if (!Accept(kw)) {
      return Status::InvalidArgument("expected " + std::string(kw) +
                                     " at offset " +
                                     std::to_string(cur().position));
    }
    return Status::OK();
  }

  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) {
      return Status::InvalidArgument("expected '" + std::string(s) +
                                     "' at offset " +
                                     std::to_string(cur().position));
    }
    return Status::OK();
  }

  Result<std::string> Identifier(const char* what) {
    if (cur().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected " + std::string(what) +
                                     " at offset " +
                                     std::to_string(cur().position));
    }
    std::string name = cur().text;
    ++pos_;
    return name;
  }

  Result<SelectStmt> Stmt() {
    SelectStmt stmt;
    if (Accept("VALIDTIME")) {
      stmt.validtime = true;
      if (Accept("COALESCED")) stmt.coalesced = true;
    }
    TQP_RETURN_IF_ERROR(Expect("SELECT"));
    if (Accept("DISTINCT")) stmt.distinct = true;
    if (AcceptSymbol("*")) {
      stmt.star = true;
    } else {
      while (true) {
        TQP_ASSIGN_OR_RETURN(item, Item());
        stmt.items.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
    }
    TQP_RETURN_IF_ERROR(Expect("FROM"));
    while (true) {
      TQP_ASSIGN_OR_RETURN(rel, Identifier("relation name"));
      stmt.from.push_back(rel);
      if (!AcceptSymbol(",")) break;
    }
    if (Accept("WHERE")) {
      TQP_ASSIGN_OR_RETURN(pred, OrExpr());
      stmt.where = pred;
    }
    if (Accept("GROUP")) {
      TQP_RETURN_IF_ERROR(Expect("BY"));
      while (true) {
        TQP_ASSIGN_OR_RETURN(g, Identifier("grouping attribute"));
        stmt.group_by.push_back(g);
        if (!AcceptSymbol(",")) break;
      }
    }
    return stmt;
  }

  Result<SelectItem> Item() {
    // Aggregate call?
    for (AggFunc f : {AggFunc::kCount, AggFunc::kSum, AggFunc::kMin,
                      AggFunc::kMax, AggFunc::kAvg}) {
      if (!cur().IsKeyword(AggFuncName(f))) continue;
      ++pos_;
      TQP_RETURN_IF_ERROR(ExpectSymbol("("));
      SelectItem item;
      item.kind = SelectItem::Kind::kAggregate;
      item.agg.func = f;
      if (f == AggFunc::kCount && AcceptSymbol("*")) {
        item.agg.attr.clear();
      } else {
        TQP_ASSIGN_OR_RETURN(attr, Identifier("aggregate attribute"));
        item.agg.attr = attr;
      }
      TQP_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (Accept("AS")) {
        TQP_ASSIGN_OR_RETURN(alias, Identifier("alias"));
        item.alias = alias;
      } else {
        item.alias = std::string(AggFuncName(f)) + "_" +
                     (item.agg.attr.empty() ? "all" : item.agg.attr);
      }
      item.agg.out_name = item.alias;
      return item;
    }
    SelectItem item;
    item.kind = SelectItem::Kind::kExpr;
    TQP_ASSIGN_OR_RETURN(e, AddExpr());
    item.expr = e;
    if (Accept("AS")) {
      TQP_ASSIGN_OR_RETURN(alias, Identifier("alias"));
      item.alias = alias;
    } else if (e->kind() == ExprKind::kAttr) {
      item.alias = e->attr_name();
    } else {
      item.alias = e->ToString();
    }
    return item;
  }

  // Expression precedence: OR < AND < NOT < comparison < additive < mult.
  Result<ExprPtr> OrExpr() {
    TQP_ASSIGN_OR_RETURN(lhs, AndExpr());
    ExprPtr out = lhs;
    while (Accept("OR")) {
      TQP_ASSIGN_OR_RETURN(rhs, AndExpr());
      out = Expr::Or(out, rhs);
    }
    return out;
  }

  Result<ExprPtr> AndExpr() {
    TQP_ASSIGN_OR_RETURN(lhs, NotExpr());
    ExprPtr out = lhs;
    while (Accept("AND")) {
      TQP_ASSIGN_OR_RETURN(rhs, NotExpr());
      out = Expr::And(out, rhs);
    }
    return out;
  }

  Result<ExprPtr> NotExpr() {
    if (Accept("NOT")) {
      TQP_ASSIGN_OR_RETURN(e, NotExpr());
      return Expr::Not(e);
    }
    return CmpExpr();
  }

  Result<ExprPtr> CmpExpr() {
    TQP_ASSIGN_OR_RETURN(lhs, AddExpr());
    struct OpMap {
      const char* sym;
      CompareOp op;
    };
    static const OpMap kOps[] = {
        {"=", CompareOp::kEq},  {"<>", CompareOp::kNe}, {"<=", CompareOp::kLe},
        {">=", CompareOp::kGe}, {"<", CompareOp::kLt},  {">", CompareOp::kGt},
    };
    for (const OpMap& m : kOps) {
      if (AcceptSymbol(m.sym)) {
        TQP_ASSIGN_OR_RETURN(rhs, AddExpr());
        return Expr::Compare(m.op, lhs, rhs);
      }
    }
    return lhs;
  }

  Result<ExprPtr> AddExpr() {
    TQP_ASSIGN_OR_RETURN(lhs, MulExpr());
    ExprPtr out = lhs;
    while (true) {
      if (AcceptSymbol("+")) {
        TQP_ASSIGN_OR_RETURN(rhs, MulExpr());
        out = Expr::Arith(ArithOp::kAdd, out, rhs);
      } else if (AcceptSymbol("-")) {
        TQP_ASSIGN_OR_RETURN(rhs, MulExpr());
        out = Expr::Arith(ArithOp::kSub, out, rhs);
      } else {
        return out;
      }
    }
  }

  Result<ExprPtr> MulExpr() {
    TQP_ASSIGN_OR_RETURN(lhs, Primary());
    ExprPtr out = lhs;
    while (true) {
      if (AcceptSymbol("*")) {
        TQP_ASSIGN_OR_RETURN(rhs, Primary());
        out = Expr::Arith(ArithOp::kMul, out, rhs);
      } else if (AcceptSymbol("/")) {
        TQP_ASSIGN_OR_RETURN(rhs, Primary());
        out = Expr::Arith(ArithOp::kDiv, out, rhs);
      } else {
        return out;
      }
    }
  }

  Result<ExprPtr> Primary() {
    const Token& t = cur();
    switch (t.kind) {
      case TokenKind::kIdentifier:
        ++pos_;
        return Expr::Attr(t.text);
      case TokenKind::kInteger:
        ++pos_;
        return Expr::Const(Value::Int(std::stoll(t.text)));
      case TokenKind::kFloat:
        ++pos_;
        return Expr::Const(Value::Double(std::stod(t.text)));
      case TokenKind::kString:
        ++pos_;
        return Expr::Const(Value::String(t.text));
      case TokenKind::kKeyword:
        if (t.text == "OVERLAPS") {
          ++pos_;
          TQP_RETURN_IF_ERROR(ExpectSymbol("("));
          TQP_ASSIGN_OR_RETURN(a, AddExpr());
          TQP_RETURN_IF_ERROR(ExpectSymbol(","));
          TQP_ASSIGN_OR_RETURN(b, AddExpr());
          TQP_RETURN_IF_ERROR(ExpectSymbol(","));
          TQP_ASSIGN_OR_RETURN(c, AddExpr());
          TQP_RETURN_IF_ERROR(ExpectSymbol(","));
          TQP_ASSIGN_OR_RETURN(d, AddExpr());
          TQP_RETURN_IF_ERROR(ExpectSymbol(")"));
          return Expr::Overlaps(a, b, c, d);
        }
        break;
      case TokenKind::kSymbol:
        if (t.IsSymbol("(")) {
          ++pos_;
          TQP_ASSIGN_OR_RETURN(e, OrExpr());
          TQP_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
        break;
      default:
        break;
    }
    return Status::InvalidArgument("unexpected token '" + t.text +
                                   "' at offset " + std::to_string(t.position));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryAst> ParseQuery(const std::string& input) {
  TQP_ASSIGN_OR_RETURN(tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.Query();
}

}  // namespace tqp
