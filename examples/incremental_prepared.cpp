// Incremental prepared-query re-execution: prepare once, update one
// relation in a loop, and watch the versioned subplan result cache splice
// everything the update did not touch.
//
// The query temporal-joins a big messy relation R (coalesce + selective
// filter, pinned under its own transferS cut) against a small probe
// relation A. Each loop iteration replaces A through MutateCatalog; the
// engine invalidates only the subplans that transitively read A, so the
// expensive R-side cut replays byte-identically from the cache while the
// A-side scan and the join recompute.
//
// Build & run:  ./build/examples/example_incremental_prepared
#include <chrono>
#include <cstdio>

#include "api/engine.h"
#include "workload/generator.h"

using namespace tqp;  // NOLINT — example code

namespace {

Relation Probe(uint64_t seed) {
  RelationGenParams a;
  a.cardinality = 24;
  a.num_names = 8;
  a.num_categories = 4;
  a.time_horizon = 4000;
  a.max_period_length = 400;
  a.seed = seed;
  return GenerateRelation(a);
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count();
}

}  // namespace

int main() {
  // R: 40k base tuples with duplicates, coalescible adjacency and snapshot
  // overlaps — the expensive side. A: two dozen long probe periods.
  RelationGenParams r;
  r.cardinality = 40000;
  r.num_names = 2500;
  r.num_categories = 16;
  r.num_values = 1000;
  r.time_horizon = 4000;
  r.max_period_length = 50;
  r.duplicate_fraction = 0.05;
  r.adjacency_fraction = 0.35;
  r.overlap_fraction = 0.10;
  r.seed = 42;

  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("R", GenerateRelation(r),
                                           Site::kDbms)
                .ok());
  TQP_CHECK(
      catalog.RegisterWithInferredFlags("A", Probe(1), Site::kDbms).ok());

  EngineOptions options;
  options.incremental_execution = true;  // the one switch this demo is about
  options.enumeration.max_plans = 1;     // keep the hand-built shape
  Engine engine(catalog, options);

  // productT(transferS(σ_{Val>985}(coalT(R))), transferS(A)): the coalesce
  // depends only on R, so its transferS cut survives every update of A.
  PlanPtr plan = PlanNode::ProductT(
      PlanNode::TransferS(PlanNode::Select(
          PlanNode::Coalesce(PlanNode::Scan("R")),
          Expr::Compare(CompareOp::kGt, Expr::Attr("Val"),
                        Expr::Const(Value::Int(985))))),
      PlanNode::TransferS(PlanNode::Scan("A")));

  // Prepare ONCE; every later Execute() reuses the prepared plan (and
  // re-prepares by itself if a mutation made it stale).
  Result<PreparedQuery> prepared =
      engine.Prepare(plan, QueryContract::Multiset());
  TQP_CHECK(prepared.ok());
  PreparedQuery query = prepared.value();

  std::printf("%4s | %8s | %10s | %10s | %12s\n", "iter", "rows", "exec ms",
              "cache hits", "cache misses");
  std::printf("%s\n", std::string(56, '-').c_str());

  for (int iter = 0; iter < 8; ++iter) {
    if (iter > 0) {
      // Replace the probe relation — a single-relation catalog update.
      const uint64_t seed = 100 + iter;
      TQP_CHECK(engine
                    .MutateCatalog([&](Catalog& c) {
                      CatalogEntry e;
                      e.data = Probe(seed);
                      return c.Update("A", std::move(e));
                    })
                    .ok());
    }
    auto t0 = std::chrono::steady_clock::now();
    Result<QueryResult> r = query.Execute();
    double ms = MillisSince(t0);
    TQP_CHECK(r.ok());
    std::printf("%4d | %8zu | %10.2f | %10lld | %12lld\n", iter,
                r->relation.size(), ms,
                static_cast<long long>(r->exec.result_cache_hits),
                static_cast<long long>(r->exec.result_cache_misses));
  }

  // Iteration 0 misses everywhere (cold cache). Every later iteration hits
  // on the R-side cut — only the A scan and the join re-ran.
  EngineStats stats = engine.stats();
  std::printf("\nengine totals: %llu result-cache hits, %llu misses, "
              "%llu bytes cached, %llu plan-cache stale evictions\n",
              static_cast<unsigned long long>(stats.result_cache_hits),
              static_cast<unsigned long long>(stats.result_cache_misses),
              static_cast<unsigned long long>(stats.result_cache_bytes),
              static_cast<unsigned long long>(
                  stats.plan_cache_stale_evictions));
  std::printf("\n%s\n", stats.ToJson().c_str());
  return 0;
}
