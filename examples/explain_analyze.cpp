// EXPLAIN ANALYZE and end-to-end tracing: run the paper's running example
// with per-operator profiling and a full-lifecycle Chrome trace, render the
// profile tree next to the chosen plan, and write the trace to
// TRACE_explain_analyze.json (open it in chrome://tracing or Perfetto).
//
// Build & run:  ./build/example_explain_analyze
#include <cstdio>

#include "algebra/printer.h"
#include "api/engine.h"
#include "core/metrics.h"
#include "core/profile.h"
#include "workload/paper_example.h"

using namespace tqp;  // NOLINT — example code

int main() {
  // The paper's catalog and query (Figure 1), served by a session Engine
  // with a slow-query log armed at 0.001 ms — everything qualifies, so the
  // log demonstrably fills.
  EngineOptions options;
  options.slow_query_threshold_ms = 0.001;
  Engine engine(PaperCatalog(), std::move(options));

  const std::string query = PaperQueryText();
  std::printf("Query:\n  %s\n\n", query.c_str());

  // One call, three observability artifacts: the relation, the per-operator
  // profile tree (EXPLAIN ANALYZE), and the Chrome trace covering the whole
  // lifecycle — plan-cache probe, parse, enumeration, costing, execution.
  QueryRunOptions run;
  run.trace = true;
  run.profile = true;
  Result<QueryResult> result = engine.Query(query, run);
  TQP_CHECK(result.ok());
  TQP_CHECK(result->profile != nullptr);
  TQP_CHECK(!result->trace_json.empty());

  // The chosen plan next to its measured profile. Prepare is a plan-cache
  // hit at this point — the Query above already optimized it.
  Result<PreparedQuery> prepared = engine.Prepare(query);
  TQP_CHECK(prepared.ok());
  std::printf("Chosen plan:\n%s\n", PrintPlan(prepared->best_plan()).c_str());
  std::printf("EXPLAIN ANALYZE:\n%s\n",
              PrintProfile(*result->profile).c_str());
  std::printf("Executor wall time: %.3f ms over %zu result rows\n\n",
              static_cast<double>(result->exec_wall_ns) / 1e6,
              result->relation.size());

  // The trace file. Every span carries its category (tql/opt/exec/vexec/
  // backend/api), thread id, and parent linkage.
  const char* path = "TRACE_explain_analyze.json";
  std::FILE* f = std::fopen(path, "w");
  TQP_CHECK(f != nullptr);
  std::fprintf(f, "%s\n", result->trace_json.c_str());
  std::fclose(f);
  std::printf("Wrote %s — open it in chrome://tracing or Perfetto.\n\n", path);

  // The slow-query log caught the run (the threshold above admits any
  // query), with its hottest operators by self time.
  for (const SlowQueryRecord& rec : engine.slow_queries()) {
    std::printf("Slow query (%.3f ms, plan %016llx): %s\n",
                static_cast<double>(rec.wall_ns) / 1e6,
                static_cast<unsigned long long>(rec.plan_fingerprint),
                rec.text.c_str());
    for (const auto& [kind, self_ns] : rec.hottest) {
      std::printf("  hot: %-12s %.3f ms\n", kind.c_str(),
                  static_cast<double>(self_ns) / 1e6);
    }
  }

  // The metrics registry accumulated the run (the Engine publishes per-query
  // counters by default); EngineStats gauges join on demand.
  engine.stats().PublishTo(&MetricsRegistry::Global());
  std::printf("\nMetrics (Prometheus exposition):\n%s",
              MetricsRegistry::Global().ToPrometheusText().c_str());
  return 0;
}
