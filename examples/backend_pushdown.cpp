// Backend pushdown: the stratum⇄DBMS split of Section 2.1 made concrete.
//
// The layered architecture runs maximal conventional subplans below each
// transferS cut inside a conventional DBMS and only the temporal work above
// it. This example walks the Backend interface bottom-up: raw DBMS
// primitives, SQL pushdown of a cut subplan with byte-identical results,
// the runtime fallback, cost calibration, and backend selection at the
// Engine level.
//
// Build & run:  ./build/examples/example_backend_pushdown
#include <cstdio>

#include "api/engine.h"
#include "backend/backend.h"
#include "backend/simulated_backend.h"
#include "backend/sqlite_backend.h"
#include "exec/evaluator.h"
#include "workload/generator.h"

using namespace tqp;  // NOLINT — example code

namespace {

Relation Conventional(uint64_t seed, size_t n) {
  RelationGenParams p;
  p.cardinality = n;
  p.num_names = 6;
  p.num_categories = 3;
  p.duplicate_fraction = 0.3;
  p.temporal = false;
  p.seed = seed;
  return GenerateRelation(p);
}

}  // namespace

int main() {
  if (!SqliteBackend::Available()) {
    std::printf("built without sqlite3 — only the simulated backend exists\n");
    return 0;
  }

  // 1. The raw primitives every backend offers: create a table with
  //    positional columns, bulk-load preserving list order, run SQL.
  Result<std::unique_ptr<Backend>> made = MakeBackend(BackendKind::kSqlite);
  TQP_CHECK(made.ok());
  Backend& be = *made.value();
  std::printf("backend: %s\n\n", be.name());

  Schema schema;
  schema.Add(Attribute{"Name", ValueType::kString});
  schema.Add(Attribute{"Val", ValueType::kInt});
  Relation rows(schema);
  for (int i = 0; i < 5; ++i) {
    Tuple t;
    t.push_back(Value::String("p" + std::to_string(i % 2)));
    t.push_back(Value::Int(10 * i));
    rows.Append(std::move(t));
  }
  TQP_CHECK(be.CreateTable("demo", schema).ok());
  TQP_CHECK(be.Load("demo", rows).ok());
  Result<Relation> sum = be.ExecuteSql(
      "SELECT c0, CAST(TOTAL(c1) AS INTEGER) FROM demo GROUP BY c0 ORDER BY c0",
      {}, schema);
  TQP_CHECK(sum.ok());
  std::printf("raw SQL over a loaded table:\n%s\n",
              sum->ToTable("sum per name").c_str());

  // 2. Pushdown of a cut subplan. The catalog's DBMS-site relations are
  //    mirrored automatically; the subtree under transferS is serialized to
  //    one SQL statement with exact list semantics. The result is
  //    byte-identical to in-engine evaluation — pushdown is an execution
  //    strategy, never a semantics change.
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("C", Conventional(5, 200),
                                           Site::kDbms)
                .ok());
  PlanPtr plan = PlanNode::TransferS(PlanNode::Select(
      PlanNode::Scan("C"),
      Expr::Compare(CompareOp::kGt, Expr::Attr("Val"),
                    Expr::Const(Value::Int(800)))));

  EngineConfig in_engine;  // backend == nullptr: the stratum does everything
  Result<Relation> ref = EvaluatePlan(plan, catalog, in_engine, nullptr);
  TQP_CHECK(ref.ok());

  EngineConfig pushed_cfg;
  pushed_cfg.backend = &be;
  ExecStats stats;
  Result<Relation> pushed = EvaluatePlan(plan, catalog, pushed_cfg, &stats);
  TQP_CHECK(pushed.ok());
  TQP_CHECK(ref->ToTable() == pushed->ToTable());
  std::printf("cut subplan pushed down: %lld subplan(s), %lld rows fetched, "
              "byte-identical to in-engine\n",
              static_cast<long long>(stats.backend_pushdowns),
              static_cast<long long>(stats.backend_rows));

  // 3. Anything the SQL serializer cannot express with exact stratum
  //    semantics (temporal operators, integer division, ...) is refused and
  //    evaluated in-engine — correctness never depends on backend coverage.
  PlanPtr refused = PlanNode::TransferS(PlanNode::Project(
      PlanNode::Scan("C"),
      {ProjItem{Expr::Arith(ArithOp::kDiv, Expr::Attr("Val"),
                            Expr::Attr("Cat")),
                "VD"}}));
  ExecStats refused_stats;
  Result<Relation> fallback =
      EvaluatePlan(refused, catalog, pushed_cfg, &refused_stats);
  TQP_CHECK(fallback.ok());
  std::printf("integer division refused: pushdowns=%lld (stratum evaluated "
              "the subtree itself)\n\n",
              static_cast<long long>(refused_stats.backend_pushdowns));

  // 4. Calibration: the backend measures its own per-operator costs so the
  //    optimizer's transfer placement responds to the DBMS it actually has.
  //    The simulated backend reproduces the constant model exactly.
  BackendCostProfile measured = be.Calibrate(in_engine);
  SimulatedBackend sim;
  BackendCostProfile constants = sim.Calibrate(in_engine);
  std::printf("calibration: sqlite fingerprint=%016llx, scan-class factor "
              "%.4g (simulated constants: factor %.4g)\n",
              static_cast<unsigned long long>(measured.fingerprint),
              measured.dbms_op_factor[static_cast<int>(OpKind::kSelect)],
              constants.dbms_op_factor[static_cast<int>(OpKind::kSelect)]);

  // 5. The same split at the session level: EngineOptions::backend selects
  //    the DBMS, and the engine's stats surface the pushdown counters the
  //    service layer reports under \stats.
  EngineOptions opts;
  opts.backend = BackendKind::kSqlite;
  Engine engine(std::move(catalog), opts);
  Result<QueryResult> qr =
      engine.Query("SELECT Name, Val FROM C WHERE Val > 800 ORDER BY Name");
  TQP_CHECK(qr.ok());
  std::printf("\nengine over %s backend: %zu rows, session pushdowns=%llu\n",
              engine.backend()->name(), qr->relation.size(),
              static_cast<unsigned long long>(engine.stats().backend_pushdowns));
  std::printf("%s\n", engine.stats().ToJson().c_str());
  return 0;
}
