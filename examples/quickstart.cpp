// Quickstart: register temporal relations, then let a session-scoped
// tqp::Engine compile, optimize, and execute TQL — with prepared queries and
// cross-query cache reuse.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "algebra/printer.h"
#include "api/engine.h"

using namespace tqp;  // NOLINT — example code

int main() {
  // 1. Build a catalog. Base relations live in the conventional DBMS.
  Schema schema;
  schema.Add(Attribute{"Room", ValueType::kString});
  schema.Add(Attribute{"Guest", ValueType::kString});
  schema.Add(Attribute{kT1, ValueType::kTime});
  schema.Add(Attribute{kT2, ValueType::kTime});

  Relation bookings(schema);
  auto book = [&bookings](const char* room, const char* guest, TimePoint a,
                          TimePoint b) {
    Tuple t;
    t.push_back(Value::String(room));
    t.push_back(Value::String(guest));
    t.push_back(Value::Time(a));
    t.push_back(Value::Time(b));
    bookings.Append(std::move(t));
  };
  book("101", "Ada", 1, 5);
  book("101", "Ada", 5, 9);   // adjacent: coalescing will merge
  book("102", "Alan", 2, 6);
  book("102", "Alan", 4, 8);  // overlapping: a snapshot duplicate
  book("103", "Edsger", 3, 7);

  Catalog catalog;
  Status st = catalog.RegisterWithInferredFlags("BOOKINGS", bookings,
                                                Site::kDbms);
  TQP_CHECK(st.ok());

  // 2. One Engine per session: it owns the catalog plus the caches that make
  //    repeated queries cheap (hash-consed plan nodes, derived subtree
  //    facts, and a plan cache keyed by query text and catalog version).
  Engine engine(std::move(catalog));

  // 3. Prepare a temporal query once: which rooms were occupied, and when —
  //    coalesced, duplicate-free snapshots, sorted by room. Prepare parses,
  //    enumerates the equivalent plans (Figure 5 of the paper), and picks
  //    the cheapest under the layered-architecture cost model.
  const char* query =
      "VALIDTIME COALESCED SELECT DISTINCT Room FROM BOOKINGS "
      "ORDER BY Room ASC";
  Result<PreparedQuery> prepared = engine.Prepare(query);
  TQP_CHECK(prepared.ok());

  std::printf("Query:\n  %s\n\nInitial plan (computed in the DBMS):\n%s\n",
              query, PrintPlan(prepared->initial_plan()).c_str());
  std::printf("Optimizer: %zu plans considered, cost %.0f -> %.0f\n",
              prepared->plans_considered(), prepared->initial_cost(),
              prepared->best_cost());
  std::printf("Rules applied:");
  for (const std::string& rule : prepared->derivation()) {
    std::printf(" %s", rule.c_str());
  }
  std::printf("\n\nBest plan:\n%s\n", PrintPlan(prepared->best_plan()).c_str());

  // 4. Execute — any number of times; the compile+optimize work above is
  //    never repeated.
  Result<QueryResult> result = prepared.value().Execute();
  TQP_CHECK(result.ok());

  std::printf("%s",
              result->relation.ToTable("Occupied rooms (coalesced):").c_str());
  std::printf(
      "\nSimulated work: DBMS %.0f units, stratum %.0f units, "
      "%lld tuples transferred\n",
      result->exec.dbms_work, result->exec.stratum_work,
      static_cast<long long>(result->exec.tuples_transferred));

  // 5. Repeated traffic: the same query text now comes straight from the
  //    session plan cache — no parsing, no enumeration.
  Result<QueryResult> repeat = engine.Query(query);
  TQP_CHECK(repeat.ok() && repeat->plan_cache_hit);
  EngineStats stats = engine.stats();
  std::printf(
      "Second run served from the plan cache (hits %llu, pipelines run "
      "%llu).\n",
      static_cast<unsigned long long>(stats.plan_cache_hits),
      static_cast<unsigned long long>(stats.prepares));
  return 0;
}
