// Quickstart: register temporal relations, compile a TQL query, optimize it,
// and execute it in the simulated layered architecture.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "algebra/printer.h"
#include "exec/evaluator.h"
#include "opt/optimizer.h"
#include "tql/translator.h"

using namespace tqp;  // NOLINT — example code

int main() {
  // 1. Build a catalog. Base relations live in the conventional DBMS.
  Schema schema;
  schema.Add(Attribute{"Room", ValueType::kString});
  schema.Add(Attribute{"Guest", ValueType::kString});
  schema.Add(Attribute{kT1, ValueType::kTime});
  schema.Add(Attribute{kT2, ValueType::kTime});

  Relation bookings(schema);
  auto book = [&bookings](const char* room, const char* guest, TimePoint a,
                          TimePoint b) {
    Tuple t;
    t.push_back(Value::String(room));
    t.push_back(Value::String(guest));
    t.push_back(Value::Time(a));
    t.push_back(Value::Time(b));
    bookings.Append(std::move(t));
  };
  book("101", "Ada", 1, 5);
  book("101", "Ada", 5, 9);   // adjacent: coalescing will merge
  book("102", "Alan", 2, 6);
  book("102", "Alan", 4, 8);  // overlapping: a snapshot duplicate
  book("103", "Edsger", 3, 7);

  Catalog catalog;
  Status st = catalog.RegisterWithInferredFlags("BOOKINGS", bookings,
                                                Site::kDbms);
  TQP_CHECK(st.ok());

  // 2. Compile a temporal query: which rooms were occupied, and when —
  //    coalesced, duplicate-free snapshots, sorted by room.
  const char* query =
      "VALIDTIME COALESCED SELECT DISTINCT Room FROM BOOKINGS "
      "ORDER BY Room ASC";
  Result<TranslatedQuery> compiled = CompileQuery(query, catalog);
  TQP_CHECK(compiled.ok());

  std::printf("Query:\n  %s\n\nInitial plan (computed in the DBMS):\n%s\n",
              query, PrintPlan(compiled->plan).c_str());

  // 3. Optimize: enumerate equivalent plans (Figure 5 of the paper) and pick
  //    the cheapest under the layered-architecture cost model.
  Result<OptimizeResult> opt = Optimize(compiled->plan, catalog,
                                        compiled->contract, DefaultRuleSet());
  TQP_CHECK(opt.ok());
  std::printf("Optimizer: %zu plans considered, cost %.0f -> %.0f\n",
              opt->plans_considered, opt->initial_cost, opt->best_cost);
  std::printf("Rules applied:");
  for (const std::string& rule : opt->derivation) {
    std::printf(" %s", rule.c_str());
  }
  std::printf("\n\nBest plan:\n%s\n", PrintPlan(opt->best_plan).c_str());

  // 4. Execute.
  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(opt->best_plan, &catalog, compiled->contract);
  TQP_CHECK(ann.ok());
  ExecStats stats;
  Result<Relation> result = Evaluate(ann.value(), EngineConfig{}, &stats);
  TQP_CHECK(result.ok());

  std::printf("%s", result->ToTable("Occupied rooms (coalesced):").c_str());
  std::printf(
      "\nSimulated work: DBMS %.0f units, stratum %.0f units, "
      "%lld tuples transferred\n",
      stats.dbms_work, stats.stratum_work,
      static_cast<long long>(stats.tuples_transferred));
  return 0;
}
