// Service client: start the TCP query service on an in-process Engine,
// connect as a client, stream a query's result frames, and read the
// service's stats — the complete request/response lifecycle of the service
// layer in one file. A real deployment runs the server block in its own
// process; the wire protocol is identical.
//
// Build & run:  ./build/examples/service_client
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/engine.h"
#include "service/loadgen.h"
#include "service/server.h"
#include "workload/paper_example.h"

using namespace tqp;  // NOLINT — example code

int main() {
  // 1. A shared Engine over the paper's EMPLOYEE/PROJECT catalog, served
  //    over TCP on an ephemeral loopback port. snapshot_path would add
  //    cross-restart plan-cache persistence; omitted here. TQP_BACKEND=sqlite
  //    selects SQL pushdown for the conventional subplans; the \stats frame
  //    at the end reports the backend and its pushdown counters either way.
  EngineOptions eopts;
  const char* be = std::getenv("TQP_BACKEND");
  if (be != nullptr && std::string(be) == "sqlite") {
    eopts.backend = BackendKind::kSqlite;
  }
  Engine engine(PaperCatalog(), eopts);
  std::printf("backend: %s\n", engine.backend()->name());
  ServerOptions options;
  options.batch_rows = 4;  // small batches so the streaming shows
  Server server(&engine, options);
  Status st = server.Start();
  TQP_CHECK(st.ok());
  std::printf("service listening on %s:%u\n", server.host().c_str(),
              server.port());

  // 2. Connect and run the paper's running example. One TQL line out;
  //    schema, batch, and done frames come back (captured raw here so we
  //    can show the actual wire bytes).
  ServiceClient client;
  st = client.Connect(server.host(), server.port());
  TQP_CHECK(st.ok());

  const std::string query = PaperQueryText();
  std::printf("\n> %s\n\n", query.c_str());
  Result<QueryOutcome> outcome = client.RunQuery(query, /*capture_raw=*/true);
  TQP_CHECK(outcome.ok());
  TQP_CHECK(outcome->ok);
  std::printf("%s", outcome->raw.c_str());  // schema + batch frames verbatim
  std::printf("=> %llu rows in %llu batches, plan cache %s\n",
              static_cast<unsigned long long>(outcome->rows),
              static_cast<unsigned long long>(outcome->batches),
              outcome->plan_cache_hit ? "hit" : "miss");

  // 3. Run it again: the shared Engine serves the repeat from its plan
  //    cache — same bytes, warm latency.
  Result<QueryOutcome> again = client.RunQuery(query, /*capture_raw=*/true);
  TQP_CHECK(again.ok() && again->ok);
  TQP_CHECK(again->raw == outcome->raw);
  std::printf("repeat: plan cache %s, byte-identical result\n",
              again->plan_cache_hit ? "hit" : "miss");

  // 4. A bad query gets an error frame; the connection stays usable.
  Result<QueryOutcome> bad = client.RunQuery("SELECT FROM nowhere");
  TQP_CHECK(bad.ok());
  TQP_CHECK(!bad->ok);
  std::printf("\nerror frame for a bad query: %s\n", bad->error.c_str());

  // 5. Service + engine counters over the wire.
  Result<std::string> stats = client.Stats();
  TQP_CHECK(stats.ok());
  std::printf("\n\\stats: %s\n", stats->c_str());

  client.Close();
  server.Stop();
  return 0;
}
