// Plan explorer: enumerate the full space of equivalent plans for a TQL
// query (Figure 5) and print each plan with its derivation and cost —
// through a session Engine, so repeated explorations share its caches.
//
// Usage:  ./build/examples/plan_explorer ["TQL query"] [max_plans]
// Without arguments it explores the paper's running example.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "algebra/printer.h"
#include "api/engine.h"
#include "workload/paper_example.h"

using namespace tqp;  // NOLINT — example code

int main(int argc, char** argv) {
  Engine engine(PaperCatalog());
  std::string query = argc > 1 ? argv[1] : PaperQueryText();
  size_t max_plans = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 40;

  Result<TranslatedQuery> q = engine.Compile(query);
  if (!q.ok()) {
    std::fprintf(stderr, "query error: %s\n", q.status().message().c_str());
    std::fprintf(stderr,
                 "(relations available: EMPLOYEE, PROJECT — see "
                 "workload/paper_example.h)\n");
    return 1;
  }

  EnumerationOptions options = engine.options().enumeration;
  options.max_plans = max_plans;
  Result<EnumerationResult> res = engine.Enumerate(query, options);
  TQP_CHECK(res.ok());

  std::printf("Query: %s\nResult type: %s%s\n\n", query.c_str(),
              ResultTypeName(q->contract.result_type),
              res->truncated ? "  (plan space truncated)" : "");

  for (size_t i = 0; i < res->plans.size(); ++i) {
    Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
        res->plans[i].plan, &engine.catalog(), q->contract);
    if (!ann.ok()) continue;
    double cost = EstimatePlanCost(ann.value(), engine.options().engine);
    std::printf("== plan %zu  cost %.0f", i, cost);
    std::vector<std::string> chain = res->DerivationOf(i);
    if (!chain.empty()) {
      std::printf("  via");
      for (const std::string& rule : chain) std::printf(" %s", rule.c_str());
    }
    std::printf(" ==\n%s\n", PrintPlan(res->plans[i].plan).c_str());
  }
  std::printf("%zu plans enumerated (%zu matches, %zu admitted, %zu gated "
              "out by the Table 2 properties)\n",
              res->plans.size(), res->matches, res->admitted, res->gated_out);
  return 0;
}
