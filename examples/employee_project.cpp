// The paper's running example (Sections 2.1, 5.2, 6), end to end:
// Figure 1 relations, the Figure 2(a) initial plan with its property
// annotations (Figure 6 style), the optimization walkthrough, and the exact
// result table from Figure 1.
//
// Build & run:  ./build/examples/employee_project
#include <cstdio>

#include "algebra/printer.h"
#include "core/equivalence.h"
#include "exec/evaluator.h"
#include "opt/optimizer.h"
#include "tql/translator.h"
#include "workload/paper_example.h"

using namespace tqp;  // NOLINT — example code

int main() {
  Catalog catalog = PaperCatalog();

  std::printf("%s\n", PaperEmployee().ToTable("EMPLOYEE").c_str());
  std::printf("%s\n", PaperProject().ToTable("PROJECT").c_str());

  std::printf(
      "Query: \"Which employees worked in a department, but not on any\n"
      "project, and when?\" — sorted, coalesced, without snapshot "
      "duplicates.\n\nTQL:\n  %s\n\n",
      PaperQueryText().c_str());

  Result<TranslatedQuery> q = CompileQuery(PaperQueryText(), catalog);
  TQP_CHECK(q.ok());

  PrintOptions opts;
  opts.show_properties = true;
  opts.show_site = true;
  Result<AnnotatedPlan> initial =
      AnnotatedPlan::Make(q->plan, &catalog, q->contract);
  TQP_CHECK(initial.ok());
  std::printf(
      "Initial plan — Figure 2(a); brackets are "
      "[OrderRequired DuplicatesRelevant PeriodPreserving]:\n%s\n",
      PrintPlan(initial.value(), opts).c_str());

  Result<OptimizeResult> opt = Optimize(q->plan, catalog, q->contract,
                                        DefaultRuleSet());
  TQP_CHECK(opt.ok());
  std::printf("Optimization: %zu equivalent plans, estimated cost %.0f -> "
              "%.0f\nDerivation:",
              opt->plans_considered, opt->initial_cost, opt->best_cost);
  for (const std::string& rule : opt->derivation) {
    std::printf(" %s", rule.c_str());
  }

  Result<AnnotatedPlan> best =
      AnnotatedPlan::Make(opt->best_plan, &catalog, q->contract);
  TQP_CHECK(best.ok());
  std::printf("\n\nOptimized plan — compare Figure 2(b)/6(b):\n%s\n",
              PrintPlan(best.value(), opts).c_str());

  ExecStats initial_stats, best_stats;
  Result<Relation> r_initial =
      Evaluate(initial.value(), EngineConfig{}, &initial_stats);
  Result<Relation> r_best = Evaluate(best.value(), EngineConfig{}, &best_stats);
  TQP_CHECK(r_initial.ok() && r_best.ok());

  std::printf("%s\n", r_best->ToTable("Result — Figure 1, bottom right:")
                          .c_str());
  bool matches = EquivalentAsLists(r_initial.value(), PaperExpectedResult());
  std::printf("Initial plan reproduces the paper's table exactly: %s\n",
              matches ? "yes" : "NO");
  std::printf("Both plans agree (as multisets): %s\n",
              EquivalentAsMultisets(r_initial.value(), r_best.value())
                  ? "yes"
                  : "NO");
  std::printf(
      "Simulated work: initial %.0f units -> optimized %.0f units "
      "(%.1fx)\n",
      initial_stats.total_work(), best_stats.total_work(),
      initial_stats.total_work() / best_stats.total_work());
  return 0;
}
