// The paper's running example (Sections 2.1, 5.2, 6), end to end through
// the tqp::Engine facade: Figure 1 relations, the Figure 2(a) initial plan
// with its property annotations (Figure 6 style), the optimization
// walkthrough, and the exact result table from Figure 1.
//
// Build & run:  ./build/examples/employee_project
#include <cstdio>

#include "algebra/printer.h"
#include "api/engine.h"
#include "core/equivalence.h"
#include "workload/paper_example.h"

using namespace tqp;  // NOLINT — example code

int main() {
  Engine engine(PaperCatalog());

  std::printf("%s\n", PaperEmployee().ToTable("EMPLOYEE").c_str());
  std::printf("%s\n", PaperProject().ToTable("PROJECT").c_str());

  std::printf(
      "Query: \"Which employees worked in a department, but not on any\n"
      "project, and when?\" — sorted, coalesced, without snapshot "
      "duplicates.\n\nTQL:\n  %s\n\n",
      PaperQueryText().c_str());

  Result<PreparedQuery> prepared = engine.Prepare(PaperQueryText());
  TQP_CHECK(prepared.ok());

  PrintOptions opts;
  opts.show_properties = true;
  opts.show_site = true;
  Result<AnnotatedPlan> initial = AnnotatedPlan::Make(
      prepared->initial_plan(), &engine.catalog(), prepared->contract());
  TQP_CHECK(initial.ok());
  std::printf(
      "Initial plan — Figure 2(a); brackets are "
      "[OrderRequired DuplicatesRelevant PeriodPreserving]:\n%s\n",
      PrintPlan(initial.value(), opts).c_str());

  std::printf("Optimization: %zu equivalent plans, estimated cost %.0f -> "
              "%.0f\nDerivation:",
              prepared->plans_considered(), prepared->initial_cost(),
              prepared->best_cost());
  for (const std::string& rule : prepared->derivation()) {
    std::printf(" %s", rule.c_str());
  }

  Result<AnnotatedPlan> best = AnnotatedPlan::Make(
      prepared->best_plan(), &engine.catalog(), prepared->contract());
  TQP_CHECK(best.ok());
  std::printf("\n\nOptimized plan — compare Figure 2(b)/6(b):\n%s\n",
              PrintPlan(best.value(), opts).c_str());

  // Execute the chosen plan through the facade, and the initial plan
  // hand-wired, to show both agree.
  Result<QueryResult> best_run = prepared.value().Execute();
  TQP_CHECK(best_run.ok());
  ExecStats initial_stats;
  Result<Relation> r_initial =
      Evaluate(initial.value(), engine.options().engine, &initial_stats);
  TQP_CHECK(r_initial.ok());

  std::printf("%s\n",
              best_run->relation.ToTable("Result — Figure 1, bottom right:")
                  .c_str());
  bool matches = EquivalentAsLists(r_initial.value(), PaperExpectedResult());
  std::printf("Initial plan reproduces the paper's table exactly: %s\n",
              matches ? "yes" : "NO");
  std::printf("Both plans agree (as multisets): %s\n",
              EquivalentAsMultisets(r_initial.value(), best_run->relation)
                  ? "yes"
                  : "NO");
  std::printf(
      "Simulated work: initial %.0f units -> optimized %.0f units "
      "(%.1fx)\n",
      initial_stats.total_work(), best_run->exec.total_work(),
      initial_stats.total_work() / best_run->exec.total_work());
  return 0;
}
