// Layered-architecture demo: how transfer costs and the DBMS's temporal-SQL
// penalty decide where each operation runs (Sections 2.1 and 4.5).
//
// The same query is optimized under different engine configurations — one
// tqp::Engine per environment, since the cost model is session state — and
// the demo prints the chosen plan and the resulting stratum/DBMS
// partitioning.
//
// Build & run:  ./build/examples/stratum_demo
#include <cstdio>

#include "algebra/printer.h"
#include "api/engine.h"
#include "workload/paper_example.h"

using namespace tqp;  // NOLINT — example code

namespace {

Catalog ScaledCatalog() {
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("EMPLOYEE", ScaledEmployee(40),
                                           Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("PROJECT", ScaledProject(40),
                                           Site::kDbms)
                .ok());
  return catalog;
}

void Report(const char* title, const EngineConfig& config) {
  EngineOptions options;
  options.engine = config;
  options.enumeration.max_plans = 3000;
  Engine engine(ScaledCatalog(), std::move(options));

  Result<PreparedQuery> prepared = engine.Prepare(PaperQueryText());
  TQP_CHECK(prepared.ok());

  Result<AnnotatedPlan> ann = AnnotatedPlan::Make(
      prepared->best_plan(), &engine.catalog(), prepared->contract());
  TQP_CHECK(ann.ok());

  size_t stratum_ops = 0, dbms_ops = 0;
  std::vector<PlanPtr> nodes;
  CollectNodes(prepared->best_plan(), &nodes);
  for (const PlanPtr& n : nodes) {
    if (n->kind() == OpKind::kTransferS || n->kind() == OpKind::kTransferD) {
      continue;
    }
    if (ann->info(n.get()).site == Site::kStratum) {
      ++stratum_ops;
    } else {
      ++dbms_ops;
    }
  }

  Result<QueryResult> run = prepared.value().Execute();
  TQP_CHECK(run.ok());
  std::printf(
      "--- %s ---\n"
      "  transfer cost/tuple: %.1f   DBMS temporal penalty: %.0fx   "
      "stratum slowdown: %.1fx\n"
      "  chosen plan: %zu ops at stratum, %zu at DBMS, %lld tuples moved\n"
      "  estimated cost %.0f, simulated work %.0f\n",
      title, config.transfer_cost_per_tuple, config.dbms_temporal_penalty,
      config.stratum_cpu_factor, stratum_ops, dbms_ops,
      static_cast<long long>(run->exec.tuples_transferred), run->best_cost,
      run->exec.total_work());
  PrintOptions popts;
  popts.show_site = true;
  std::printf("%s\n", PrintPlan(ann.value(), popts).c_str());
}

}  // namespace

int main() {
  std::printf(
      "One query, three environments. The optimizer repartitions the plan\n"
      "between the stratum and the DBMS as the cost ratios change.\n\n");

  // Balanced: the paper's default story — temporal ops to the stratum, sort
  // stays in the DBMS.
  EngineConfig balanced;
  Report("balanced (paper's assumptions)", balanced);

  // Expensive network: shipping tuples dominates; keep work in the DBMS as
  // long as possible.
  EngineConfig pricey_net = balanced;
  pricey_net.transfer_cost_per_tuple = 200.0;
  pricey_net.dbms_temporal_penalty = 4.0;
  Report("expensive transfers", pricey_net);

  // Hopeless DBMS temporal support: even at high transfer cost, temporal
  // operations flee to the stratum.
  EngineConfig slow_dbms = balanced;
  slow_dbms.dbms_temporal_penalty = 500.0;
  Report("very slow DBMS temporal SQL", slow_dbms);
  return 0;
}
