// Layered-architecture demo: how transfer costs and the DBMS's temporal-SQL
// penalty decide where each operation runs (Sections 2.1 and 4.5).
//
// The same query is optimized under different engine configurations; the
// demo prints the chosen plan and the resulting stratum/DBMS partitioning.
//
// Build & run:  ./build/examples/stratum_demo
#include <cstdio>

#include "algebra/printer.h"
#include "exec/evaluator.h"
#include "opt/optimizer.h"
#include "tql/translator.h"
#include "workload/paper_example.h"

using namespace tqp;  // NOLINT — example code

namespace {

void Report(const char* title, const Catalog& catalog,
            const TranslatedQuery& q, const EngineConfig& engine) {
  OptimizerOptions options;
  options.engine = engine;
  options.enumeration.max_plans = 3000;
  Result<OptimizeResult> opt =
      Optimize(q.plan, catalog, q.contract, DefaultRuleSet(), options);
  TQP_CHECK(opt.ok());

  Result<AnnotatedPlan> ann =
      AnnotatedPlan::Make(opt->best_plan, &catalog, q.contract);
  TQP_CHECK(ann.ok());

  size_t stratum_ops = 0, dbms_ops = 0;
  std::vector<PlanPtr> nodes;
  CollectNodes(opt->best_plan, &nodes);
  for (const PlanPtr& n : nodes) {
    if (n->kind() == OpKind::kTransferS || n->kind() == OpKind::kTransferD) {
      continue;
    }
    if (ann->info(n.get()).site == Site::kStratum) {
      ++stratum_ops;
    } else {
      ++dbms_ops;
    }
  }

  ExecStats stats;
  TQP_CHECK(Evaluate(ann.value(), engine, &stats).ok());
  std::printf(
      "--- %s ---\n"
      "  transfer cost/tuple: %.1f   DBMS temporal penalty: %.0fx   "
      "stratum slowdown: %.1fx\n"
      "  chosen plan: %zu ops at stratum, %zu at DBMS, %lld tuples moved\n"
      "  estimated cost %.0f, simulated work %.0f\n",
      title, engine.transfer_cost_per_tuple, engine.dbms_temporal_penalty,
      engine.stratum_cpu_factor, stratum_ops, dbms_ops,
      static_cast<long long>(stats.tuples_transferred), opt->best_cost,
      stats.total_work());
  PrintOptions popts;
  popts.show_site = true;
  std::printf("%s\n", PrintPlan(ann.value(), popts).c_str());
}

}  // namespace

int main() {
  Catalog catalog;
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("EMPLOYEE", ScaledEmployee(40),
                                           Site::kDbms)
                .ok());
  TQP_CHECK(catalog
                .RegisterWithInferredFlags("PROJECT", ScaledProject(40),
                                           Site::kDbms)
                .ok());

  Result<TranslatedQuery> q = CompileQuery(PaperQueryText(), catalog);
  TQP_CHECK(q.ok());

  std::printf(
      "One query, three environments. The optimizer repartitions the plan\n"
      "between the stratum and the DBMS as the cost ratios change.\n\n");

  // Balanced: the paper's default story — temporal ops to the stratum, sort
  // stays in the DBMS.
  EngineConfig balanced;
  Report("balanced (paper's assumptions)", catalog, q.value(), balanced);

  // Expensive network: shipping tuples dominates; keep work in the DBMS as
  // long as possible.
  EngineConfig pricey_net = balanced;
  pricey_net.transfer_cost_per_tuple = 200.0;
  pricey_net.dbms_temporal_penalty = 4.0;
  Report("expensive transfers", catalog, q.value(), pricey_net);

  // Hopeless DBMS temporal support: even at high transfer cost, temporal
  // operations flee to the stratum.
  EngineConfig slow_dbms = balanced;
  slow_dbms.dbms_temporal_penalty = 500.0;
  Report("very slow DBMS temporal SQL", catalog, q.value(), slow_dbms);
  return 0;
}
